// Group-commit write-ahead log for trajectory sample appends.
//
// Frame format (little-endian):
//   [u32 payload_len][u32 crc32(payload)][payload]
// payload[0] is the record type:
//   kSample (1): i64 trajectory id, f64 t, f64 x, f64 y       (33 bytes)
//   kCommit (2): u64 batch sequence, u32 record count          (13 bytes)
//
// A batch of samples is staged as its record frames followed by one commit
// frame, all contiguous. Concurrent AppendBatch calls share flushes
// (group commit): the first staged batch's thread becomes the flush leader,
// writes every batch staged so far in one storage append, issues ONE Sync
// for all of them, and wakes the followers. Segment rotation happens only
// between flush groups, so frames — and whole batches — never straddle a
// segment boundary.
//
// Recovery (Wal::Open time) replays each segment front to back, validating
// frame lengths and CRCs, and requires each commit frame to carry the next
// expected sequence number and the exact count of records staged since the
// previous commit. The first invalid frame truncates its segment back to
// the end of the last committed batch and drops every later segment —
// uncommitted tail records vanish with it, which is exactly the
// all-or-nothing contract: a batch is durable iff its commit frame is.

#ifndef MST_INGEST_WAL_H_
#define MST_INGEST_WAL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/geom/trajectory.h"
#include "src/ingest/wal_storage.h"

namespace mst {

/// One logged trajectory sample append.
struct WalRecord {
  TrajectoryId traj_id = kInvalidTrajectoryId;
  double t = 0.0;
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// What recovery found and did.
struct WalRecoveryInfo {
  /// Committed batches replayed.
  uint64_t committed_batches = 0;
  /// Sample records inside those batches.
  uint64_t records_recovered = 0;
  /// Valid-CRC sample records discarded because no commit frame covered
  /// them (uncommitted tail of a crashed group commit).
  uint64_t records_discarded = 0;
  /// True when a torn/short/corrupt frame forced a truncation.
  bool truncated_tail = false;
  /// Segments dropped wholesale behind a truncation point.
  uint64_t segments_dropped = 0;
};

/// CRC-32 (IEEE 802.3, reflected) over `size` bytes. Exposed for tests.
uint32_t Crc32(const void* data, size_t size);

class Wal {
 public:
  struct Options {
    /// Rotate to a new segment once the tail exceeds this many bytes
    /// (checked between flush groups, so segments overshoot by at most one
    /// group).
    size_t segment_bytes = 1 << 20;
  };

  /// Replay sink for recovered committed batches, called in commit order.
  using ReplayFn =
      std::function<void(uint64_t seq, const std::vector<WalRecord>& batch)>;

  /// Opens the log over `storage` (borrowed; must outlive the Wal),
  /// recovering whatever is durable: committed batches are replayed through
  /// `replay` (may be null), damaged tails are truncated in storage, and
  /// the append head is positioned after the last committed frame.
  Wal(WalStorageSet* storage, const Options& options,
      const ReplayFn& replay = nullptr, WalRecoveryInfo* info = nullptr);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Durably appends `records` as one atomic batch (frames + commit frame,
  /// group-committed). Returns the batch's sequence number (> 0), or 0 if
  /// the append could not be made durable — the log is then poisoned and
  /// every later append fails too (a real WAL would fail over; this one
  /// models the crash the recovery tests then exercise). Thread-safe.
  /// Equivalent to Stage + WaitDurable.
  uint64_t AppendBatch(const std::vector<WalRecord>& records);

  /// First half of AppendBatch: assigns the batch its sequence number and
  /// stages its frames, without waiting for durability. Returns 0 when the
  /// log is poisoned. Callers needing staging order to match an external
  /// order (the ingest engine's validation order) hold their own lock
  /// across the ordering decision and this call.
  uint64_t Stage(const std::vector<WalRecord>& records);

  /// Second half: blocks until `seq` is durable (participating in — or
  /// leading — group flushes). False when the log failed before covering
  /// `seq`.
  bool WaitDurable(uint64_t seq);

  /// False once any write or sync failed.
  bool healthy() const;

  /// Sequence number of the newest durable batch (0 = none).
  uint64_t durable_seq() const;

  /// Storage Sync calls issued so far — with concurrent appenders this is
  /// strictly less than the number of batches when group commit coalesces.
  uint64_t sync_count() const;

  /// Segments currently in the set (grows with rotation).
  size_t segment_count() const;

 private:
  // Appends `bytes` to the tail segment (rotating first if the tail is
  // full) and syncs. Returns false on any storage failure. Runs outside
  // `mu_` — only the flush leader calls it, serialized by flushing_.
  bool WriteAndSync(const std::string& bytes);

  void Recover(const ReplayFn& replay, WalRecoveryInfo* info);

  WalStorageSet* const storage_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string staged_;           // frames staged but not yet flushed
  uint64_t staged_max_seq_ = 0;  // newest seq inside staged_
  bool flushing_ = false;        // a leader is inside WriteAndSync
  bool healthy_ = true;
  uint64_t next_seq_ = 1;    // sequence the next AppendBatch will take
  uint64_t durable_seq_ = 0; // newest seq proven durable by a Sync
  uint64_t sync_count_ = 0;
  size_t tail_segment_ = 0;  // index of the segment appends go to
};

}  // namespace mst

#endif  // MST_INGEST_WAL_H_
