#include "src/ingest/ingest_engine.h"

#include <cmath>
#include <limits>
#include <utility>

#include "src/index/rtree3d.h"
#include "src/util/check.h"

namespace mst {

IngestEngine::IngestEngine(WalStorageSet* wal_storage)
    : IngestEngine(wal_storage, Options()) {}

IngestEngine::IngestEngine(WalStorageSet* wal_storage, const Options& options,
                           WalRecoveryInfo* recovery)
    : options_(options), delta_(options.index) {
  // Recovery replay: committed batches re-apply in sequence order into the
  // (already constructed) state maps. No locks needed — nothing else can
  // see the engine yet; no view is published until the merge below.
  wal_ = std::make_unique<Wal>(
      wal_storage, options.wal,
      [this](uint64_t seq, const std::vector<WalRecord>& batch) {
        ApplyLocked(batch);
        applied_seq_ = seq;
      },
      recovery);
  // Replay validated nothing (the log only ever holds validated batches,
  // and truncation keeps prefixes, which stay valid); seed the reservation
  // table from the recovered timelines.
  for (const auto& [id, samples] : samples_) {
    reserved_last_t_[id] = samples.back().t;
  }
  // Pack everything recovered into the main tree and publish view #1.
  Merge();
  if (options_.background_merge) {
    merger_ = std::thread([this] { MergerLoop(); });
  }
}

IngestEngine::~IngestEngine() {
  {
    std::lock_guard<std::mutex> lock(merger_mu_);
    stop_merger_ = true;
  }
  merger_cv_.notify_all();
  if (merger_.joinable()) merger_.join();
}

bool IngestEngine::Append(const std::vector<WalRecord>& batch) {
  if (batch.empty()) return true;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(reserve_mu_);
    // Validate the whole batch against the reserved timelines (which
    // include batches still in flight): reject-before-log keeps the WAL
    // free of frames recovery would have to second-guess.
    std::unordered_map<TrajectoryId, double> batch_last;
    for (const WalRecord& r : batch) {
      if (!std::isfinite(r.t) || !std::isfinite(r.x) || !std::isfinite(r.y)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      double last = -std::numeric_limits<double>::infinity();
      if (const auto bit = batch_last.find(r.traj_id);
          bit != batch_last.end()) {
        last = bit->second;
      } else if (const auto rit = reserved_last_t_.find(r.traj_id);
                 rit != reserved_last_t_.end()) {
        last = rit->second;
      }
      if (r.t <= last) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      batch_last[r.traj_id] = r.t;
    }
    seq = wal_->Stage(batch);
    if (seq == 0) return false;
    for (const auto& [id, t] : batch_last) reserved_last_t_[id] = t;
  }

  // Durability first (group commit happens in here), application second —
  // in WAL-sequence ticket order, so the applied state is always exactly
  // the durable prefix.
  const bool durable = wal_->WaitDurable(seq);
  bool applied = false;
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    apply_cv_.wait(lock, [&] { return applied_seq_ + 1 == seq; });
    if (durable && !poisoned_) {
      // No publish here: ApplyLocked marks the view stale and the next
      // View() resolution pays for one republish, however many appends
      // landed in between.
      ApplyLocked(batch);
      applied = true;
    } else {
      // A durability failure poisons the engine: later sequences may
      // already be staged behind the failed one, and applying around a
      // hole would diverge from the durable log.
      poisoned_ = true;
    }
    applied_seq_ = seq;
    apply_cv_.notify_all();
  }
  if (applied && options_.background_merge &&
      delta_count_.load(std::memory_order_relaxed) >=
          options_.merge_threshold_entries) {
    merger_cv_.notify_one();
  }
  return applied;
}

void IngestEngine::ApplyLocked(const std::vector<WalRecord>& batch) {
  std::vector<LeafEntry> fresh;
  fresh.reserve(batch.size());
  for (const WalRecord& r : batch) {
    std::vector<TPoint>& samples = samples_[r.traj_id];
    const TPoint point{r.t, {r.x, r.y}};
    if (!samples.empty()) {
      fresh.push_back(LeafEntry::Of(r.traj_id, samples.back(), point));
    } else {
      first_seen_.push_back(r.traj_id);
    }
    samples.push_back(point);
    IngestSnapshot::Entry& entry = table_[r.traj_id];
    entry.trajectory = std::make_shared<Trajectory>(r.traj_id, samples);
    ++entry.version;
  }
  delta_.Append(fresh);
  delta_count_.store(delta_.entry_count(), std::memory_order_relaxed);
  view_stale_ = true;
}

void IngestEngine::PublishLocked() const {
  auto view = std::make_shared<IndexView>();
  view->main = main_tree_;
  view->delta = delta_.Snapshot();
  view->source = std::make_shared<IngestSnapshot>(table_);
  view_ = std::move(view);
  view_stale_ = false;
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

void IngestEngine::Merge() {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  std::vector<LeafEntry> all;
  size_t cut = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    cut = delta_.entry_count();
    if (cut == 0 && main_tree_ != nullptr) return;  // nothing new
    all = main_entries_;
    const std::vector<LeafEntry>& pending = delta_.entries();
    all.insert(all.end(), pending.begin(),
               pending.begin() + static_cast<ptrdiff_t>(cut));
  }
  // The expensive part — STR packing — runs off the state lock; appends
  // keep landing in the delta behind `cut` meanwhile.
  auto tree = std::make_shared<RTree3D>(options_.index);
  tree->BulkLoad(all);  // copies `all`; the vector becomes main_entries_
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    main_tree_ = std::move(tree);
    main_entries_ = std::move(all);
    delta_.DropPrefix(cut);
    delta_count_.store(delta_.entry_count(), std::memory_order_relaxed);
    PublishLocked();
  }
}

IndexView IngestEngine::View() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (view_stale_) PublishLocked();
  return *view_;
}

IndexViewProvider IngestEngine::ViewProvider() const {
  return [this] { return View(); };
}

std::vector<MstResult> IngestEngine::Search(const Trajectory& query,
                                            const TimeInterval& period,
                                            const MstOptions& options,
                                            MstStats* stats) const {
  const IndexView view = View();
  const BFMstSearch searcher(view.main.get(), view.source.get(), nullptr,
                             view.delta.get());
  return searcher.Search(query, period, options, stats);
}

TrajectoryStore IngestEngine::MaterializeStore() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  TrajectoryStore store;
  for (const TrajectoryId id : first_seen_) {
    store.Add(*table_.at(id).trajectory);
  }
  return store;
}

uint64_t IngestEngine::applied_seq() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return applied_seq_;
}

void IngestEngine::MergerLoop() {
  std::unique_lock<std::mutex> lock(merger_mu_);
  while (true) {
    merger_cv_.wait(lock, [this] {
      return stop_merger_ ||
             delta_count_.load(std::memory_order_relaxed) >=
                 options_.merge_threshold_entries;
    });
    if (stop_merger_) return;
    lock.unlock();
    Merge();
    lock.lock();
  }
}

}  // namespace mst
