// Byte-level storage behind the write-ahead log: an append-only segment
// file abstraction narrow enough to wrap with deterministic fault injection
// (tests/wal_fault_test.cc) and simple enough to keep in memory — the repo
// simulates its disk (src/index/pagefile.h), and the WAL follows suit.

#ifndef MST_INGEST_WAL_STORAGE_H_
#define MST_INGEST_WAL_STORAGE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace mst {

/// One append-only WAL segment file. Implementations must tolerate being
/// read while appended to (single appender, any readers); Append may accept
/// a PREFIX of the bytes (short write) or corrupt what it accepted (torn
/// write) — exactly the crash surface recovery has to survive. A failed or
/// partial Append/Sync poisons the WAL above, never the storage itself.
class WalStorage {
 public:
  virtual ~WalStorage() = default;

  /// Appends up to `size` bytes at the end; returns how many bytes the file
  /// actually grew by (< size models a crash mid-write). Accepted bytes may
  /// differ from the input (torn write) — only Sync'ed, CRC-checked frames
  /// are trusted by recovery.
  virtual size_t Append(const void* data, size_t size) = 0;

  /// Makes every previously accepted byte durable. False models a crash
  /// before the flush completed (durability of those bytes is unknown).
  virtual bool Sync() = 0;

  /// Current file size in bytes.
  virtual size_t Size() const = 0;

  /// Reads up to `size` bytes from `offset`; returns bytes read (short at
  /// end of file).
  virtual size_t ReadAt(size_t offset, void* out, size_t size) const = 0;

  /// Drops every byte at or after `offset` (recovery truncates torn tails).
  virtual void Truncate(size_t offset) = 0;
};

/// A set of WAL segments addressed by index 0..SegmentCount()-1; rotation
/// opens segment N+1, recovery replays 0..N in order and may drop a suffix
/// of the set.
class WalStorageSet {
 public:
  virtual ~WalStorageSet() = default;

  virtual size_t SegmentCount() const = 0;

  /// Opens (creating if absent) segment `i`; i <= SegmentCount() (checked by
  /// implementations — segments are created densely, in order). The pointer
  /// stays valid for the set's lifetime.
  virtual WalStorage* OpenSegment(size_t i) = 0;

  /// Deletes segments `first..SegmentCount()-1` (recovery drops everything
  /// after a corrupt segment; a fresh tail segment is then re-created).
  virtual void RemoveSegmentsFrom(size_t first) = 0;
};

/// In-memory WalStorage. Thread-safe (the WAL appends under its own lock,
/// but recovery scans may race late reader threads in tests).
class MemWalStorage : public WalStorage {
 public:
  size_t Append(const void* data, size_t size) override {
    std::lock_guard<std::mutex> lock(mu_);
    const auto* bytes = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), bytes, bytes + size);
    return size;
  }

  bool Sync() override { return true; }

  size_t Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_.size();
  }

  size_t ReadAt(size_t offset, void* out, size_t size) const override {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= bytes_.size()) return 0;
    const size_t n = std::min(size, bytes_.size() - offset);
    std::memcpy(out, bytes_.data() + offset, n);
    return n;
  }

  void Truncate(size_t offset) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset < bytes_.size()) bytes_.resize(offset);
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint8_t> bytes_;
};

/// In-memory segment set over MemWalStorage files.
class MemWalStorageSet : public WalStorageSet {
 public:
  size_t SegmentCount() const override { return segments_.size(); }

  WalStorage* OpenSegment(size_t i) override {
    MST_CHECK_MSG(i <= segments_.size(), "segments are created in order");
    if (i == segments_.size()) {
      segments_.push_back(std::make_unique<MemWalStorage>());
    }
    return segments_[i].get();
  }

  void RemoveSegmentsFrom(size_t first) override {
    if (first < segments_.size()) {
      segments_.resize(first);
    }
  }

 private:
  std::vector<std::unique_ptr<MemWalStorage>> segments_;
};

}  // namespace mst

#endif  // MST_INGEST_WAL_STORAGE_H_
