// Deterministic fault injection for the WAL's storage layer: a
// FaultInjectingFile wraps any WalStorage and fires one seeded fault when
// the cumulative number of appended bytes crosses a chosen trip point —
// fail-stop, short write, torn write (prefix intact, remainder garbled), or
// a silent corrupt byte. After the trip the file behaves like a crashed
// process's file descriptor: appends accept nothing, syncs fail. Recovery
// tests sweep the trip point across a recorded valid log and check that
// Wal::Open always lands on a consistent committed prefix.

#ifndef MST_INGEST_FAULT_INJECTION_H_
#define MST_INGEST_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/ingest/wal_storage.h"
#include "src/util/check.h"

namespace mst {

/// What happens when the cumulative appended-byte count reaches `at_byte`.
struct FaultPlan {
  enum class Mode {
    kNone,         // never trips
    kFailStop,     // the crossing append accepts only the bytes before the
                   // trip point, then the file is dead (clean crash)
    kShortWrite,   // like kFailStop, but the crossing append REPORTS full
                   // acceptance while persisting only the prefix (lost tail)
    kTornWrite,    // the crossing append persists the prefix plus a garbled
                   // version of the remaining bytes (sector tear)
    kCorruptByte,  // the byte AT the trip point is silently flipped; the
                   // file stays alive (latent media corruption)
  };

  Mode mode = Mode::kNone;
  /// Cumulative append-byte offset at which the fault fires. 0 trips on the
  /// first appended byte.
  uint64_t at_byte = 0;
  /// Seeds the garble pattern of kTornWrite / the flip of kCorruptByte, so
  /// every schedule is replayable.
  uint64_t seed = 1;
};

/// WalStorage decorator implementing FaultPlan. Reads and truncation pass
/// through untouched — recovery must be able to examine the damage.
class FaultInjectingFile : public WalStorage {
 public:
  /// `base` is borrowed, not owned, and must outlive this wrapper.
  /// `appended_before` biases the cumulative counter (segments created
  /// after rotation continue the log-wide byte count, so one FaultPlan
  /// addresses a byte of the whole multi-segment log).
  FaultInjectingFile(WalStorage* base, const FaultPlan& plan,
                     uint64_t appended_before = 0)
      : base_(base), plan_(plan), appended_(appended_before) {
    MST_CHECK(base != nullptr);
  }

  size_t Append(const void* data, size_t size) override {
    if (dead_) return 0;
    if (plan_.mode == FaultPlan::Mode::kNone || size == 0) {
      appended_ += size;
      return base_->Append(data, size);
    }
    const uint64_t end = appended_ + size;
    if (end <= plan_.at_byte || tripped_) {
      // kCorruptByte trips exactly once; every other mode kills the file at
      // the trip, so `tripped_ && !dead_` only happens for kCorruptByte.
      appended_ = end;
      return base_->Append(data, size);
    }
    tripped_ = true;
    const size_t keep = plan_.at_byte > appended_
                            ? static_cast<size_t>(plan_.at_byte - appended_)
                            : 0;
    const auto* bytes = static_cast<const uint8_t*>(data);
    switch (plan_.mode) {
      case FaultPlan::Mode::kFailStop: {
        dead_ = true;
        const size_t accepted = base_->Append(bytes, keep);
        appended_ += accepted;
        return accepted;
      }
      case FaultPlan::Mode::kShortWrite: {
        dead_ = true;
        base_->Append(bytes, keep);
        appended_ += keep;
        return size;  // lies: caller believes the write completed
      }
      case FaultPlan::Mode::kTornWrite: {
        dead_ = true;
        std::vector<uint8_t> torn(bytes, bytes + size);
        uint64_t x = plan_.seed | 1;
        for (size_t i = keep; i < torn.size(); ++i) {
          // splitmix64-style garble, deterministic in (seed, position).
          x += 0x9e3779b97f4a7c15ull;
          uint64_t z = x;
          z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
          z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
          torn[i] ^= static_cast<uint8_t>((z ^ (z >> 31)) | 1);  // != 0: flip
        }
        base_->Append(torn.data(), torn.size());
        appended_ += size;
        return size;
      }
      case FaultPlan::Mode::kCorruptByte: {
        std::vector<uint8_t> flipped(bytes, bytes + size);
        uint64_t z = (plan_.seed | 1) * 0xbf58476d1ce4e5b9ull;
        flipped[keep] ^= static_cast<uint8_t>(1u << (z % 8));
        appended_ = end;
        return base_->Append(flipped.data(), flipped.size());
      }
      case FaultPlan::Mode::kNone:
        break;
    }
    MST_CHECK(false);
    return 0;
  }

  bool Sync() override { return dead_ ? false : base_->Sync(); }

  size_t Size() const override { return base_->Size(); }

  size_t ReadAt(size_t offset, void* out, size_t size) const override {
    return base_->ReadAt(offset, out, size);
  }

  void Truncate(size_t offset) override { base_->Truncate(offset); }

  /// True once the fault fired.
  bool tripped() const { return tripped_; }

  /// Cumulative append-byte counter (including the `appended_before` bias).
  uint64_t cumulative_bytes() const { return appended_; }

 private:
  WalStorage* base_;
  FaultPlan plan_;
  uint64_t appended_;
  bool tripped_ = false;
  bool dead_ = false;
};

/// Segment set whose files share one log-wide FaultPlan: the cumulative
/// append counter spans rotations, so `at_byte` addresses the Nth byte ever
/// appended to the log regardless of segment boundaries.
class FaultInjectingStorageSet : public WalStorageSet {
 public:
  /// `base` is borrowed and must outlive this wrapper.
  FaultInjectingStorageSet(WalStorageSet* base, const FaultPlan& plan)
      : base_(base), plan_(plan) {
    MST_CHECK(base != nullptr);
  }

  size_t SegmentCount() const override { return base_->SegmentCount(); }

  WalStorage* OpenSegment(size_t i) override {
    if (i < wrappers_.size() && wrappers_[i] != nullptr) {
      return wrappers_[i].get();
    }
    // Segments opened later inherit the bytes already pushed through
    // earlier ones, keeping the trip offset log-wide. Any one wrapper
    // tripping kills the whole set (a process crashes, not a file).
    WalStorage* raw = base_->OpenSegment(i);
    auto wrapper = std::make_unique<SharedCounterFile>(this, raw);
    if (i >= wrappers_.size()) wrappers_.resize(i + 1);
    wrappers_[i] = std::move(wrapper);
    return wrappers_[i].get();
  }

  void RemoveSegmentsFrom(size_t first) override {
    if (first < wrappers_.size()) wrappers_.resize(first);
    base_->RemoveSegmentsFrom(first);
  }

  bool tripped() const { return tripped_; }

  /// Total bytes ever pushed through Append across all segments (a
  /// convenient way for tests to learn valid trip offsets).
  uint64_t bytes_appended() const { return appended_; }

 private:
  // Thin per-segment file sharing the set-wide counter and plan state.
  class SharedCounterFile : public WalStorage {
   public:
    SharedCounterFile(FaultInjectingStorageSet* set, WalStorage* base)
        : set_(set), base_(base) {}

    size_t Append(const void* data, size_t size) override {
      return set_->AppendVia(base_, data, size);
    }
    bool Sync() override { return set_->tripped_dead_ ? false : base_->Sync(); }
    size_t Size() const override { return base_->Size(); }
    size_t ReadAt(size_t offset, void* out, size_t size) const override {
      return base_->ReadAt(offset, out, size);
    }
    void Truncate(size_t offset) override { base_->Truncate(offset); }

   private:
    FaultInjectingStorageSet* set_;
    WalStorage* base_;
  };

  size_t AppendVia(WalStorage* base, const void* data, size_t size) {
    // Replays FaultInjectingFile's logic against the shared counter by
    // wrapping the target file with the current cumulative offset, then
    // mirrors the state transitions (counter, tripped/dead) back.
    if (tripped_dead_) return 0;
    FaultPlan plan = plan_;
    if (tripped_) plan.mode = FaultPlan::Mode::kNone;  // kCorruptByte: once
    FaultInjectingFile file(base, plan, appended_);
    const size_t accepted = file.Append(data, size);
    appended_ = file.cumulative_bytes();
    if (file.tripped()) {
      tripped_ = true;
      if (plan_.mode != FaultPlan::Mode::kCorruptByte) tripped_dead_ = true;
    }
    return accepted;
  }

  WalStorageSet* base_;
  FaultPlan plan_;
  std::vector<std::unique_ptr<SharedCounterFile>> wrappers_;
  uint64_t appended_ = 0;
  bool tripped_ = false;
  bool tripped_dead_ = false;
};

}  // namespace mst

#endif  // MST_INGEST_FAULT_INJECTION_H_
