// The streaming write path: WAL-durable sample appends feeding an LSM-style
// delta+main index pair, with point-in-time snapshot views for queries.
//
// Write flow of one Append(batch):
//   1. validate + reserve under the reservation lock (timestamps strictly
//      extend each trajectory; reservation order == WAL sequence order, so
//      applies never interleave inconsistently),
//   2. stage the batch's frames in the WAL and wait for durability
//      (group commit: concurrent batches share one fsync),
//   3. apply to the in-memory state in WAL-sequence ticket order and mark
//      the published view stale. The next View() resolution republishes a
//      fresh immutable IndexView (main tree shared, delta tree rebuilt over
//      the unmerged segments, trajectory snapshot copied) — so a burst of
//      appends between two queries costs one table copy and one delta
//      rebuild, not one per append.
//
// Queries resolve a view once (QueryExecutor does this at dequeue time) and
// run entirely against that snapshot: they never see a half-applied batch,
// and a concurrent merge — which swaps which tree holds a segment but not
// the segment set — changes results not at all (tested by
// IngestEngineTest.MergeDuringQueryIdentity and the metamorphic suite).
//
// Versioning: the engine owns a monotonic per-trajectory write version,
// carried by each snapshot (TrajectorySource::OwnsWriteVersions). The
// result cache keys off it, so entries cached against an old snapshot are
// unservable the moment the trajectory grows — the index-local version
// scheme cannot be used here because delta/main tree instances are rebuilt
// (and their counters reset) on every publish.

#ifndef MST_INGEST_INGEST_ENGINE_H_
#define MST_INGEST_INGEST_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/mst_search.h"
#include "src/exec/query_executor.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"
#include "src/ingest/delta_index.h"
#include "src/ingest/wal.h"

namespace mst {

/// Immutable point-in-time trajectory table, the TrajectorySource behind
/// every published view. Holds shared ownership of its Trajectory objects —
/// unchanged trajectories are shared across snapshots, a grown one gets a
/// fresh object while older snapshots keep the old.
class IngestSnapshot : public TrajectorySource {
 public:
  struct Entry {
    std::shared_ptr<const Trajectory> trajectory;
    uint64_t version = 0;
  };

  explicit IngestSnapshot(std::unordered_map<TrajectoryId, Entry> by_id)
      : by_id_(std::move(by_id)) {}

  const Trajectory* Find(TrajectoryId id) const override {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second.trajectory.get();
  }

  bool OwnsWriteVersions() const override { return true; }

  uint64_t SourceWriteVersion(TrajectoryId id) const override {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? 0 : it->second.version;
  }

  size_t size() const { return by_id_.size(); }

 private:
  std::unordered_map<TrajectoryId, Entry> by_id_;
};

class IngestEngine {
 public:
  struct Options {
    Wal::Options wal;
    /// Page/cache/leaf-format configuration of the main and delta trees.
    TrajectoryIndex::Options index;
    /// Delta size (segments) at which the background merger kicks in.
    size_t merge_threshold_entries = 4096;
    /// Run the background merger thread. Off: merges happen only via
    /// explicit Merge() calls (deterministic tests).
    bool background_merge = false;
  };

  /// Opens over `wal_storage` (borrowed; must outlive the engine),
  /// recovering the durable log: committed batches are replayed, damaged
  /// tails truncated (`recovery` reports what happened), and the recovered
  /// segments are merged into a packed main tree before the first view is
  /// published.
  IngestEngine(WalStorageSet* wal_storage, const Options& options,
               WalRecoveryInfo* recovery = nullptr);
  explicit IngestEngine(WalStorageSet* wal_storage);  // default Options

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  /// Stops the background merger (if any).
  ~IngestEngine();

  /// Durably appends `batch` as one atomic unit. Every record needs finite
  /// coordinates and a timestamp strictly greater than its trajectory's
  /// newest (including records earlier in the same batch); a batch failing
  /// validation is rejected whole before touching the WAL. Returns true
  /// once the batch is durable AND applied — the next resolved view shows
  /// all of it. Thread-safe; concurrent batches group-commit.
  bool Append(const std::vector<WalRecord>& batch);

  /// Synchronously merges the current delta prefix into a freshly
  /// STR-bulk-loaded main tree. Query results are invariant under merges;
  /// only the tree shapes and node counts change. Thread-safe (merges
  /// serialize; appends continue during the off-lock bulk load).
  void Merge();

  /// The current snapshot view (never null parts except `delta`, which is
  /// null when every segment lives in the main tree). Republishes first when
  /// appends have landed since the last publish — the amortization point:
  /// publishing is deferred from the append path to the first view
  /// resolution that needs it.
  IndexView View() const;

  /// Provider form of View() for QueryExecutor's live constructor.
  IndexViewProvider ViewProvider() const;

  /// Convenience: one k-MST query against the current view.
  std::vector<MstResult> Search(const Trajectory& query,
                                const TimeInterval& period,
                                const MstOptions& options = MstOptions(),
                                MstStats* stats = nullptr) const;

  /// Deep copy of the current trajectory table in first-append order — the
  /// input for quiesced oracle rebuilds in tests and benches.
  TrajectoryStore MaterializeStore() const;

  /// Segments currently in the delta (unmerged).
  size_t delta_entries() const {
    return delta_count_.load(std::memory_order_relaxed);
  }

  /// Newest WAL sequence applied to the published state.
  uint64_t applied_seq() const;

  /// Batches rejected by validation (never logged).
  uint64_t rejected_batches() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Views published so far (diagnostics: appends mark the view stale
  /// instead of publishing, so this grows with view resolutions and merges,
  /// not with append volume).
  uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  const Wal& wal() const { return *wal_; }

 private:
  void ApplyLocked(const std::vector<WalRecord>& batch);
  // Rebuilds view_ from the current state (const: View() republishes
  // on-demand from under the state lock; only view-cache members mutate).
  void PublishLocked() const;
  void MergerLoop();

  const Options options_;
  // Built in the constructor body: recovery replays straight into the maps
  // below, so every other member must be constructed first.
  std::unique_ptr<Wal> wal_;

  // Reservation state: validation + WAL staging happen under this lock so
  // that WAL sequence order equals validation order (see header comment).
  std::mutex reserve_mu_;
  std::unordered_map<TrajectoryId, double> reserved_last_t_;

  // Applied state, guarded by state_mu_. apply_cv_ sequences ticket waits.
  mutable std::mutex state_mu_;
  std::condition_variable apply_cv_;
  uint64_t applied_seq_ = 0;
  bool poisoned_ = false;
  std::unordered_map<TrajectoryId, std::vector<TPoint>> samples_;
  std::unordered_map<TrajectoryId, IngestSnapshot::Entry> table_;
  std::vector<TrajectoryId> first_seen_;  // append order, for oracles
  std::vector<LeafEntry> main_entries_;   // segments inside main_tree_
  std::shared_ptr<const TrajectoryIndex> main_tree_;
  // The delta and the published-view cache mutate inside const View()
  // (lazy republish under state_mu_), hence mutable.
  mutable DeltaIndex delta_;
  mutable std::shared_ptr<const IndexView> view_;  // last published snapshot
  mutable bool view_stale_ = false;  // appends landed since last publish

  std::atomic<size_t> delta_count_{0};
  std::atomic<uint64_t> rejected_{0};
  mutable std::atomic<uint64_t> publishes_{0};

  std::mutex merge_mu_;  // serializes Merge() bodies

  // Background merger.
  std::mutex merger_mu_;
  std::condition_variable merger_cv_;
  bool stop_merger_ = false;
  std::thread merger_;
};

}  // namespace mst

#endif  // MST_INGEST_INGEST_ENGINE_H_
