// In-memory delta index: the segments appended since the last delta→main
// merge, served behind the TrajectoryIndex interface by STR-bulk-loading a
// fresh immutable 3D R-tree snapshot whenever the entry set changes. The
// snapshot is what queries traverse (as the `delta` tree of BFMstSearch's
// two-tree forest); the entry vector is what the merger drains into the
// packed main tree. Not thread-safe — the ingest engine mutates it only
// under its state lock and hands out only the immutable snapshots.

#ifndef MST_INGEST_DELTA_INDEX_H_
#define MST_INGEST_DELTA_INDEX_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/index/node.h"
#include "src/index/trajectory_index.h"

namespace mst {

class DeltaIndex {
 public:
  /// `options` configures each snapshot tree (page budget, leaf format —
  /// the delta serves the same read path as the main tree).
  explicit DeltaIndex(const TrajectoryIndex::Options& options)
      : options_(options) {}

  /// Adds freshly appended segments (invalidates the cached snapshot).
  void Append(const std::vector<LeafEntry>& entries) {
    entries_.insert(entries_.end(), entries.begin(), entries.end());
    snapshot_.reset();
  }

  /// Drops the first `n` entries — they just became part of the main tree.
  /// Called by the merger with the exact prefix size it captured, so the
  /// delta and the new main stay disjoint and jointly exhaustive.
  void DropPrefix(size_t n) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<ptrdiff_t>(n));
    snapshot_.reset();
  }

  size_t entry_count() const { return entries_.size(); }

  /// Segments currently in the delta, in append order (the merge prefix).
  const std::vector<LeafEntry>& entries() const { return entries_; }

  /// Immutable tree over the current entries; rebuilt lazily after a
  /// mutation, shared by every view published until the next one. Null when
  /// the delta is empty (BFMstSearch treats a null delta as "main only").
  std::shared_ptr<const TrajectoryIndex> Snapshot();

 private:
  TrajectoryIndex::Options options_;
  std::vector<LeafEntry> entries_;
  std::shared_ptr<const TrajectoryIndex> snapshot_;
};

}  // namespace mst

#endif  // MST_INGEST_DELTA_INDEX_H_
