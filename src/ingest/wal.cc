#include "src/ingest/wal.h"

#include <array>
#include <cstring>
#include <utility>

#include "src/util/check.h"

namespace mst {

namespace {

constexpr uint8_t kSampleType = 1;
constexpr uint8_t kCommitType = 2;

constexpr size_t kFrameHeaderBytes = 8;           // u32 len + u32 crc
constexpr size_t kSamplePayloadBytes = 1 + 8 + 24; // type + id + t,x,y
constexpr size_t kCommitPayloadBytes = 1 + 8 + 4;  // type + seq + count
// Anything longer than the longest known payload is structurally corrupt;
// rejecting it early keeps a garbled length field from swallowing the rest
// of the segment as one giant "frame".
constexpr size_t kMaxPayloadBytes = kSamplePayloadBytes;

static_assert(sizeof(double) == 8);

template <typename T>
void PutRaw(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
T GetRaw(const uint8_t* in) {
  T value;
  std::memcpy(&value, in, sizeof(T));
  return value;
}

void AppendFrame(std::string* out, const std::string& payload) {
  PutRaw<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  PutRaw<uint32_t>(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

std::string EncodeSample(const WalRecord& r) {
  std::string payload;
  payload.reserve(kSamplePayloadBytes);
  payload.push_back(static_cast<char>(kSampleType));
  PutRaw<int64_t>(&payload, r.traj_id);
  PutRaw<double>(&payload, r.t);
  PutRaw<double>(&payload, r.x);
  PutRaw<double>(&payload, r.y);
  return payload;
}

std::string EncodeCommit(uint64_t seq, uint32_t count) {
  std::string payload;
  payload.reserve(kCommitPayloadBytes);
  payload.push_back(static_cast<char>(kCommitType));
  PutRaw<uint64_t>(&payload, seq);
  PutRaw<uint32_t>(&payload, count);
  return payload;
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const auto& table = Crc32Table();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

Wal::Wal(WalStorageSet* storage, const Options& options,
         const ReplayFn& replay, WalRecoveryInfo* info)
    : storage_(storage), options_(options) {
  MST_CHECK(storage != nullptr);
  MST_CHECK(options.segment_bytes > 0);
  Recover(replay, info);
}

void Wal::Recover(const ReplayFn& replay, WalRecoveryInfo* info) {
  WalRecoveryInfo local;
  const size_t segments = storage_->SegmentCount();
  uint64_t last_seq = 0;
  size_t last_surviving = 0;  // segment index the append head lands in

  for (size_t si = 0; si < segments; ++si) {
    WalStorage* seg = storage_->OpenSegment(si);
    const size_t size = seg->Size();
    size_t offset = 0;
    size_t committed_end = 0;  // end of the last commit frame in this segment
    std::vector<WalRecord> pending;
    bool damaged = false;

    while (offset < size) {
      uint8_t header[kFrameHeaderBytes];
      if (seg->ReadAt(offset, header, sizeof(header)) != sizeof(header)) {
        damaged = true;
        break;
      }
      const uint32_t len = GetRaw<uint32_t>(header);
      const uint32_t crc = GetRaw<uint32_t>(header + 4);
      if (len == 0 || len > kMaxPayloadBytes) {
        damaged = true;
        break;
      }
      uint8_t payload[kMaxPayloadBytes];
      if (seg->ReadAt(offset + kFrameHeaderBytes, payload, len) != len) {
        damaged = true;  // torn mid-payload
        break;
      }
      if (Crc32(payload, len) != crc) {
        damaged = true;
        break;
      }
      const uint8_t type = payload[0];
      if (type == kSampleType && len == kSamplePayloadBytes) {
        WalRecord r;
        r.traj_id = GetRaw<int64_t>(payload + 1);
        r.t = GetRaw<double>(payload + 9);
        r.x = GetRaw<double>(payload + 17);
        r.y = GetRaw<double>(payload + 25);
        pending.push_back(r);
      } else if (type == kCommitType && len == kCommitPayloadBytes) {
        const uint64_t seq = GetRaw<uint64_t>(payload + 1);
        const uint32_t count = GetRaw<uint32_t>(payload + 9);
        if (seq != last_seq + 1 || count != pending.size()) {
          // CRC-valid but semantically impossible (a garble that slipped
          // past the checksum, or interleaved history): stop trusting the
          // log here, like any other corruption.
          damaged = true;
          break;
        }
        last_seq = seq;
        ++local.committed_batches;
        local.records_recovered += pending.size();
        if (replay != nullptr) replay(seq, pending);
        pending.clear();
        committed_end = offset + kFrameHeaderBytes + len;
      } else {
        damaged = true;  // unknown type or type/length mismatch
        break;
      }
      offset += kFrameHeaderBytes + len;
    }

    // A batch never straddles segments (rotation happens at flush-group
    // boundaries), so records pending at a clean segment end are an
    // uncommitted crashed tail exactly like a torn frame's.
    local.records_discarded += pending.size();
    const bool drop_tail = damaged || !pending.empty();
    last_surviving = si;
    if (drop_tail) {
      local.truncated_tail = true;
      seg->Truncate(committed_end);
      if (si + 1 < segments) {
        local.segments_dropped += segments - (si + 1);
        storage_->RemoveSegmentsFrom(si + 1);
      }
      break;
    }
  }

  if (storage_->SegmentCount() == 0) {
    storage_->OpenSegment(0);
    last_surviving = 0;
  }
  tail_segment_ = last_surviving;
  next_seq_ = last_seq + 1;
  durable_seq_ = last_seq;
  if (info != nullptr) *info = local;
}

uint64_t Wal::AppendBatch(const std::vector<WalRecord>& records) {
  const uint64_t seq = Stage(records);
  if (seq == 0) return 0;
  return WaitDurable(seq) ? seq : 0;
}

uint64_t Wal::Stage(const std::vector<WalRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!healthy_) return 0;
  const uint64_t seq = next_seq_++;
  for (const WalRecord& r : records) {
    AppendFrame(&staged_, EncodeSample(r));
  }
  AppendFrame(&staged_,
              EncodeCommit(seq, static_cast<uint32_t>(records.size())));
  staged_max_seq_ = seq;
  return seq;
}

bool Wal::WaitDurable(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  // Group commit: whoever finds no flush in progress drains the staged
  // buffer — their own batch plus everything concurrent appenders staged
  // behind it — with a single write+sync; the rest wait on the condition
  // variable until a leader's sync covers their sequence.
  while (healthy_ && durable_seq_ < seq) {
    if (!flushing_ && !staged_.empty()) {
      flushing_ = true;
      std::string group = std::move(staged_);
      staged_.clear();
      const uint64_t group_max = staged_max_seq_;
      lock.unlock();
      const bool ok = WriteAndSync(group);
      lock.lock();
      flushing_ = false;
      if (ok) {
        durable_seq_ = group_max;
      } else {
        healthy_ = false;
      }
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  return healthy_ || durable_seq_ >= seq;
}

bool Wal::WriteAndSync(const std::string& bytes) {
  WalStorage* seg = storage_->OpenSegment(tail_segment_);
  if (seg->Size() >= options_.segment_bytes) {
    ++tail_segment_;
    seg = storage_->OpenSegment(tail_segment_);
  }
  if (seg->Append(bytes.data(), bytes.size()) != bytes.size()) return false;
  const bool ok = seg->Sync();
  if (ok) {
    std::lock_guard<std::mutex> lock(mu_);
    ++sync_count_;
  }
  return ok;
}

bool Wal::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return healthy_;
}

uint64_t Wal::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_seq_;
}

uint64_t Wal::sync_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_count_;
}

size_t Wal::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return storage_->SegmentCount();
}

}  // namespace mst
