// Concurrent k-MST query execution on one shared index: a fixed worker pool
// behind a bounded submission queue. Builds on the thread-safe buffer
// manager (sharded pin/unpin) so that many BFMSTSearch traversals can read
// the same paged index at once; every query gets its own isolated MstStats.
//
// Results are deterministic: BFMSTSearch's traversal is a pure function of
// (index, query, options) — the page-id tiebreak in its best-first queue
// fixes the node order, and buffer state only affects physical I/O, never
// logical reads — so RunBatch returns, in query order, exactly what a serial
// loop over BFMstSearch::Search would, regardless of worker count or
// scheduling.

#ifndef MST_EXEC_QUERY_EXECUTOR_H_
#define MST_EXEC_QUERY_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/mst_search.h"
#include "src/core/result_cache.h"
#include "src/exec/bounded_queue.h"
#include "src/exec/kth_bound_board.h"
#include "src/geom/interval.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"

namespace mst {

namespace internal {
struct BatchBoundBoard;
}  // namespace internal

/// A point-in-time read view of one index stack: the packed main tree, an
/// optional delta tree over not-yet-merged segments (searched as a forest,
/// see BFMstSearch), and the trajectory source backing both. The shared_ptrs
/// pin the snapshot for the duration of one search while a live engine
/// publishes newer views concurrently; for a static stack they are
/// non-owning aliases of caller-owned objects.
struct IndexView {
  std::shared_ptr<const TrajectoryIndex> main;
  std::shared_ptr<const TrajectoryIndex> delta;  // null = no delta tree
  std::shared_ptr<const TrajectorySource> source;
};

/// Supplier of the current IndexView. Called by a worker once per dequeued
/// query (dequeue time, not submit time — a queued query runs against the
/// freshest published snapshot); must be thread-safe and never return a view
/// with null `main` or `source`. The ingest engine's ViewProvider() is the
/// live implementation (src/ingest/ingest_engine.h).
using IndexViewProvider = std::function<IndexView()>;

/// Non-owning IndexView over a static (index, store) pair — the adapter the
/// pointer-based QueryExecutor constructors use. Caller keeps ownership;
/// both must outlive every search run against the view.
IndexView MakeStaticIndexView(const TrajectoryIndex* index,
                              const TrajectorySource* store);

/// One unit of work: a k-MST query. Must satisfy BFMstSearch::Search's
/// checked preconditions (k >= 1, positive-duration period covered by the
/// query trajectory).
struct QueryRequest {
  QueryRequest(Trajectory query_in, TimeInterval period_in,
               MstOptions options_in = {})
      : query(std::move(query_in)),
        period(period_in),
        options(options_in) {}

  Trajectory query;
  TimeInterval period;
  MstOptions options;
  /// Optional cross-executor kth-bound board (see kth_bound_board.h). When
  /// set AND the request runs under exact_postprocess with an exact
  /// traversal policy, the worker seeds
  /// MstOptions::initial_kth_upper_bound from the board's current minimum
  /// right before the search starts (dequeue time, not submit time — a
  /// queued request benefits from every bound published while it waited),
  /// and publishes its own exact kth result value afterwards iff the search
  /// returned full reach (exactly k results). The shard layer uses one
  /// board per scatter-gather query, shared by that query's per-shard legs;
  /// the board's soundness contract (disjoint candidate partitions of one
  /// logical query) is the sharer's responsibility. Null = no sharing.
  std::shared_ptr<KthBoundBoard> kth_bound_board;
};

/// What a worker produced for one request.
struct QueryOutcome {
  std::vector<MstResult> results;
  /// Per-query instrumentation, isolated per worker thread.
  MstStats stats;
  /// True when a shutdown dropped the request before a worker ran it (its
  /// `results` are empty and `stats` is default-constructed).
  bool cancelled = false;
  /// True when the shard front-end's admission control turned the request
  /// away before any work was queued (src/shard/shard_frontend.h; the
  /// executor itself never sets this). `results` are empty.
  bool rejected = false;
};

/// Fixed-size worker pool executing k-MST queries against one index + store.
/// Thread-safe: Submit/RunBatch may be called from any thread.
class QueryExecutor {
 public:
  struct Options {
    /// Worker threads; 0 picks std::thread::hardware_concurrency (min 1).
    int num_workers = 0;
    /// Bound of the submission queue; full-queue submits block (backpressure).
    size_t queue_capacity = 128;
    /// Entries of the cross-query DISSIM result cache the workers share
    /// (src/core/result_cache.h); 0 disables it. Results and node-access
    /// stats are byte-identical either way — the cache only skips repeated
    /// post-processing integrals.
    size_t result_cache_entries = 1 << 14;
    /// Batch-level kth-bound sharing: when queued queries of one RunBatch
    /// call share a query fingerprint, period, and exclude id, later ones
    /// seed MstOptions::initial_kth_upper_bound from an already-completed
    /// sibling's exact kth result value — a true bound, so results are
    /// unchanged while node accesses drop. Applied only under
    /// exact_postprocess with an exact traversal policy (approximate piece
    /// integrals are not lower bounds of the exact values, so a seed could
    /// change results there); the board is fresh per RunBatch and plain
    /// Submit() is never seeded, so repeated batches stay deterministic.
    bool share_batch_bounds = true;
  };

  /// What happens to queued-but-unstarted requests on shutdown.
  enum class DrainMode {
    kDrain,          // workers finish everything already submitted
    kCancelPending,  // queued requests complete immediately as `cancelled`
  };

  /// Neither pointer is owned; both must outlive the executor. Queries run
  /// against exactly this (index, store) pair for the executor's lifetime.
  QueryExecutor(const TrajectoryIndex* index, const TrajectorySource* store,
                const Options& options);
  QueryExecutor(const TrajectoryIndex* index, const TrajectorySource* store)
      : QueryExecutor(index, store, Options()) {}

  /// Live-view form: each dequeued query re-resolves the provider and
  /// searches the returned snapshot (main + optional delta forest). This is
  /// the ingest seam — appends and merges swap the published view between
  /// queries, never under one.
  QueryExecutor(IndexViewProvider provider, const Options& options);

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Drains outstanding work (Shutdown(kDrain)) before returning.
  ~QueryExecutor();

  /// Enqueues one query. Blocks while the submission queue is full. After
  /// Shutdown the returned future is immediately ready with
  /// `cancelled == true`.
  std::future<QueryOutcome> Submit(QueryRequest request);

  /// Runs every request and returns the outcomes in request order —
  /// identical to a serial loop over BFMstSearch::Search (see header
  /// comment). An empty input returns an empty vector without touching the
  /// workers.
  std::vector<QueryOutcome> RunBatch(const std::vector<QueryRequest>& requests);

  /// Convenience batch API: each trajectory queried over its own lifespan
  /// with `base_options` (k overridden by `k`).
  std::vector<QueryOutcome> RunBatch(const std::vector<Trajectory>& queries,
                                     int k,
                                     const MstOptions& base_options = {});

  /// Stops the pool and joins the workers. Idempotent; safe to call
  /// concurrently with Submit (late submits come back cancelled).
  void Shutdown(DrainMode mode = DrainMode::kDrain);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Queries fully executed so far.
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Queries cancelled by Shutdown(kCancelPending) or post-shutdown submits.
  int64_t cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The workers' shared cross-query result cache (capacity 0 = disabled).
  ResultCache& result_cache() { return result_cache_; }
  const ResultCache& result_cache() const { return result_cache_; }

 private:
  struct Task {
    explicit Task(QueryRequest request_in) : request(std::move(request_in)) {}

    QueryRequest request;
    std::promise<QueryOutcome> promise;
    /// Non-null for RunBatch tasks with bound sharing on: the batch's
    /// blackboard of completed siblings' exact result values.
    std::shared_ptr<internal::BatchBoundBoard> board;
  };

  void WorkerLoop();

  std::future<QueryOutcome> SubmitTask(
      QueryRequest request, std::shared_ptr<internal::BatchBoundBoard> board);

  IndexViewProvider provider_;
  ResultCache result_cache_;  // shared by the per-task searchers
  bool share_batch_bounds_;
  BoundedQueue<Task> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> cancelled_{0};
  std::mutex shutdown_mu_;  // serializes Shutdown callers for the join
};

}  // namespace mst

#endif  // MST_EXEC_QUERY_EXECUTOR_H_
