// Bounded multi-producer/multi-consumer task queue used by the
// QueryExecutor's submission path and the shard front-end's per-shard
// queues. Push blocks while the queue is full (backpressure toward
// submitters), Pop blocks while it is empty, and Close() wakes everyone:
// further pushes fail, pops drain the remaining items and then report
// exhaustion.
//
// Multi-consumer shutdown discipline (audited for the shard front-end,
// which runs one queue per shard — a stranded consumer would deadlock a
// whole shard): every path that can change what a waiting consumer would
// observe re-signals not_empty_ itself, instead of relying on Close()'s
// one-time notify_all having already reached every waiter.
//
//   * Close()/CloseAndDrain() broadcast both conditions under the mutex —
//     a consumer either observes closed_ at wait entry (predicate true, no
//     block) or is blocked and receives the broadcast; no third state.
//   * A Pop that observes closed-and-drained re-broadcasts not_empty_
//     before returning, so consumers exit in a self-sustaining cascade:
//     M consumers observing closed+drained needs M wakeups, not one.
//   * A Push that fails because the queue closed re-broadcasts not_empty_
//     too: its caller may have been the producer a consumer was waiting
//     on, and the failed push must not swallow that consumer's wakeup
//     (it was woken by a Pop's not_full_ signal meant to admit an item
//     that now never arrives).
//
// The cascade makes consumer exit independent of signal/wakeup pairing —
// regression-locked by BoundedQueueTest.EightPoppersRacingClose.

#ifndef MST_EXEC_BOUNDED_QUEUE_H_
#define MST_EXEC_BOUNDED_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace mst {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and drops `item` — iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      // This push may have consumed a not_full_ signal issued by a Pop that
      // expected a replacement item; re-broadcast so no consumer waits for
      // an item that will never arrive (see header).
      not_empty_.notify_all();
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available. Returns std::nullopt once the queue
  /// is closed *and* drained — the consumer-exit signal.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      // Closed and drained. Cascade the exit signal to sibling consumers
      // so that M waiting consumers all observe closed+drained without
      // depending on Close()'s single notify_all (see header).
      not_empty_.notify_all();
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    if (closed_ && items_.empty()) {
      // This pop drained the closed queue: flip sibling consumers from
      // "waiting for an item" to "exit" immediately.
      not_empty_.notify_all();
    }
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes; queued items stay poppable until drained.
  /// Idempotent and safe to race with Push/Pop from any number of threads.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Close() plus removal of everything still queued, handed back to the
  /// caller (who owns cancelling/completing the abandoned work).
  std::vector<T> CloseAndDrain() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    std::vector<T> drained;
    drained.reserve(items_.size());
    for (T& item : items_) drained.push_back(std::move(item));
    items_.clear();
    not_empty_.notify_all();
    not_full_.notify_all();
    return drained;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mst

#endif  // MST_EXEC_BOUNDED_QUEUE_H_
