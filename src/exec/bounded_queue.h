// Bounded multi-producer/multi-consumer task queue used by the
// QueryExecutor's submission path. Push blocks while the queue is full
// (backpressure toward submitters), Pop blocks while it is empty, and
// Close() wakes everyone: further pushes fail, pops drain the remaining
// items and then report exhaustion.

#ifndef MST_EXEC_BOUNDED_QUEUE_H_
#define MST_EXEC_BOUNDED_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace mst {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and drops `item` — iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available. Returns std::nullopt once the queue
  /// is closed *and* drained — the consumer-exit signal.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes; queued items stay poppable until drained.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Close() plus removal of everything still queued, handed back to the
  /// caller (who owns cancelling/completing the abandoned work).
  std::vector<T> CloseAndDrain() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    std::vector<T> drained;
    drained.reserve(items_.size());
    for (T& item : items_) drained.push_back(std::move(item));
    items_.clear();
    not_empty_.notify_all();
    not_full_.notify_all();
    return drained;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mst

#endif  // MST_EXEC_BOUNDED_QUEUE_H_
