// Cross-worker kth-upper-bound board: a lock-free atomic minimum over the
// exact kth-best DISSIM values published by cooperating sub-searches of one
// logical k-MST query. The shard layer (src/shard/) hands one board to the
// per-shard legs of a scatter-gather query: a shard that completes first
// publishes its exact kth result value, and legs that start later seed
// MstOptions::initial_kth_upper_bound from the board's current minimum —
// the cross-shard generalization of the executor's per-batch bound sharing.
//
// Soundness contract (the reason publishing is restricted): every
// participant of one board must search a *disjoint subset* of one logical
// query's candidate set, under exact_postprocess with an exact traversal
// policy, and may publish only a full-reach kth value (exactly k results
// returned). Then each published value is the exact kth-best DISSIM over k
// globally-eligible trajectories, hence a true upper bound of the global
// kth-best — which is precisely initial_kth_upper_bound's contract (the
// search adds its own relative slack before pruning with it, see
// MstOptions). Values from approximate traversals, partial reaches, or
// overlapping candidate sets are NOT sound and must never be published.

#ifndef MST_EXEC_KTH_BOUND_BOARD_H_
#define MST_EXEC_KTH_BOUND_BOARD_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>

namespace mst {

/// Monotonically decreasing shared upper bound (starts at +inf). Publish is
/// an atomic fetch-min; Current is one relaxed load. Safe for any number of
/// concurrent publishers and readers; no ordering is implied between a
/// publish and the reads of other data (the bound's *value* is self-
/// certifying — a sound bound is sound whenever it is observed).
class KthBoundBoard {
 public:
  KthBoundBoard() = default;

  KthBoundBoard(const KthBoundBoard&) = delete;
  KthBoundBoard& operator=(const KthBoundBoard&) = delete;

  /// The smallest bound published so far; +inf before the first publish.
  double Current() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  /// Lowers the board to min(current, bound). Non-finite or negative bounds
  /// are ignored (never a usable prune bound; a NaN would poison the min).
  void Publish(double bound) {
    if (!(bound >= 0.0) || bound == std::numeric_limits<double>::infinity()) {
      return;
    }
    const uint64_t new_bits = std::bit_cast<uint64_t>(bound);
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    // Non-negative doubles order the same as their bit patterns, so the
    // fetch-min runs on raw bits.
    while (std::bit_cast<double>(cur) > bound &&
           !bits_.compare_exchange_weak(cur, new_bits,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Publishes since construction (diagnostics: how often shards actually
  /// lowered the board).
  int64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  /// Publish() plus the diagnostic count (kept separate so the hot path can
  /// skip the extra atomic when the caller does not track it).
  void PublishCounted(double bound) {
    Publish(bound);
    publishes_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bits_{
      std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity())};
  std::atomic<int64_t> publishes_{0};
};

}  // namespace mst

#endif  // MST_EXEC_KTH_BOUND_BOARD_H_
