#include "src/exec/query_executor.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/util/check.h"

namespace mst {

namespace internal {

// Per-RunBatch blackboard for kth-bound sharing. Completed queries publish
// their ascending exact result values keyed by (query fingerprint, period,
// exclude id, integration policy, exact-postprocess flag); queued siblings
// under the same key seed their search's kth upper bound with the published
// kth value — by construction the true kth smallest exact DISSIM of that
// key's eligible set, so the seed meets
// MstOptions::initial_kth_upper_bound's soundness contract exactly. A fresh
// board per batch means bounds never leak across batches.
//
// The policy and postprocess fields are in the key even though WorkerLoop
// already gates both publish and consume on (exact_postprocess && policy ==
// kExact): with the fingerprint alone, a mixed batch that duplicates one
// query geometry under kExact *and* kTrapezoid would depend on that distant
// gate to keep the trapezoid sibling's values away from the exact one — a
// trapezoid-traversal value is not a sound bound for an exact search, so a
// future gate relaxation would silently change results. Keying on the full
// result-determining option set makes cross-policy seeding structurally
// impossible (regression-locked by
// ExecutorTest.MixedPolicyDuplicatesNeverShareBounds).
struct BatchBoundBoard {
  struct Key {
    QueryFingerprint fp;
    double period_begin = 0.0;
    double period_end = 0.0;
    TrajectoryId exclude = kInvalidTrajectoryId;
    IntegrationPolicy policy = IntegrationPolicy::kExact;
    bool exact_postprocess = true;

    bool operator==(const Key& o) const {
      return fp == o.fp && period_begin == o.period_begin &&
             period_end == o.period_end && exclude == o.exclude &&
             policy == o.policy && exact_postprocess == o.exact_postprocess;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.fp.lo ^ (k.fp.hi * 0x9e3779b97f4a7c15ull);
      h = (h ^ std::bit_cast<uint64_t>(k.period_begin)) * 1099511628211ull;
      h = (h ^ std::bit_cast<uint64_t>(k.period_end)) * 1099511628211ull;
      h ^= static_cast<uint64_t>(k.exclude) + (h >> 29);
      h = (h ^ (static_cast<uint64_t>(k.policy) * 2u +
                (k.exact_postprocess ? 1u : 0u))) *
          1099511628211ull;
      return static_cast<size_t>(h);
    }
  };

  std::mutex mu;
  // Longest ascending exact-dissim vector published per key: a prefix of
  // length k of any published vector is the true top-k values, so keeping
  // the longest serves every sibling reach.
  std::unordered_map<Key, std::vector<double>, KeyHash> published;

  // kth smallest exact DISSIM for `key` if a sibling with reach >= k has
  // completed, else +inf (no seed).
  double SeedBound(const Key& key, int k) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = published.find(key);
    if (it == published.end() ||
        it->second.size() < static_cast<size_t>(k)) {
      return std::numeric_limits<double>::infinity();
    }
    return it->second[static_cast<size_t>(k - 1)];
  }

  void Publish(const Key& key, std::vector<double> dissims) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<double>& cur = published[key];
    if (dissims.size() > cur.size()) cur = std::move(dissims);
  }
};

}  // namespace internal

namespace {

QueryOutcome CancelledOutcome() {
  QueryOutcome out;
  out.cancelled = true;
  return out;
}

}  // namespace

IndexView MakeStaticIndexView(const TrajectoryIndex* index,
                              const TrajectorySource* store) {
  MST_CHECK(index != nullptr && store != nullptr);
  IndexView view;
  // Aliasing shared_ptrs with an empty owner: no lifetime management, the
  // caller's objects are simply addressed through the view type.
  view.main = std::shared_ptr<const TrajectoryIndex>(
      std::shared_ptr<const void>(), index);
  view.source = std::shared_ptr<const TrajectorySource>(
      std::shared_ptr<const void>(), store);
  return view;
}

QueryExecutor::QueryExecutor(const TrajectoryIndex* index,
                             const TrajectorySource* store,
                             const Options& options)
    : QueryExecutor(
          [view = MakeStaticIndexView(index, store)] { return view; },
          options) {}

QueryExecutor::QueryExecutor(IndexViewProvider provider,
                             const Options& options)
    : provider_(std::move(provider)),
      result_cache_(options.result_cache_entries),
      share_batch_bounds_(options.share_batch_bounds),
      queue_(options.queue_capacity) {
  MST_CHECK(provider_ != nullptr);
  int workers = options.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(DrainMode::kDrain); }

void QueryExecutor::WorkerLoop() {
  while (std::optional<Task> task = queue_.Pop()) {
    QueryOutcome out;
    MstOptions opts = task->request.options;
    // Bound sharing is gated on exact_postprocess AND an exact traversal
    // policy, at both ends: only exact results are published (anything else
    // wouldn't be a sound bound), and only searches whose candidate bounds
    // are built from exact piece integrals consume a seed. Under an
    // approximate policy (trapezoid pieces) the traversal's OPTDISSIM-style
    // bounds can overestimate the exact value by the quadrature error, so
    // an exact-valued seed could prune a true top-k candidate — see
    // MstOptions::initial_kth_upper_bound.
    const bool exact_query = opts.exact_postprocess &&
                             opts.policy == IntegrationPolicy::kExact;
    const bool share = task->board != nullptr && exact_query;
    internal::BatchBoundBoard::Key key;
    if (share) {
      key = {FingerprintQuery(task->request.query),
             task->request.period.begin, task->request.period.end,
             opts.exclude_id, opts.policy, opts.exact_postprocess};
      opts.initial_kth_upper_bound = std::min(
          opts.initial_kth_upper_bound, task->board->SeedBound(key, opts.k));
    }
    // Cross-executor board (scatter-gather legs of one logical query):
    // seeded at dequeue time under the same exact gate, so a leg queued
    // behind earlier work starts with every bound its siblings published
    // while it waited. The search inflates the seed by its relative slack
    // internally (see MstOptions::initial_kth_upper_bound).
    KthBoundBoard* const shard_board = task->request.kth_bound_board.get();
    if (shard_board != nullptr && exact_query) {
      opts.initial_kth_upper_bound =
          std::min(opts.initial_kth_upper_bound, shard_board->Current());
    }
    // Resolve the view at dequeue time and pin it for this one search: a
    // concurrent append/merge publishes a new snapshot, never mutates this
    // one, so the query observes either all of a batch or none of it.
    const IndexView view = provider_();
    const BFMstSearch searcher(view.main.get(), view.source.get(),
                               &result_cache_, view.delta.get());
    out.results = searcher.Search(task->request.query, task->request.period,
                                  opts, &out.stats);
    if (shard_board != nullptr && exact_query &&
        out.results.size() == static_cast<size_t>(opts.k)) {
      // Full reach only: with fewer than k results the kth value of this
      // leg's partition does not exist, and the largest returned value
      // bounds nothing (see KthBoundBoard's soundness contract).
      shard_board->PublishCounted(out.results.back().dissim);
    }
    if (share && !out.results.empty()) {
      std::vector<double> dissims;
      dissims.reserve(out.results.size());
      for (const MstResult& r : out.results) dissims.push_back(r.dissim);
      task->board->Publish(key, std::move(dissims));
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    task->promise.set_value(std::move(out));
  }
}

std::future<QueryOutcome> QueryExecutor::Submit(QueryRequest request) {
  return SubmitTask(std::move(request), nullptr);
}

std::future<QueryOutcome> QueryExecutor::SubmitTask(
    QueryRequest request, std::shared_ptr<internal::BatchBoundBoard> board) {
  Task task(std::move(request));
  task.board = std::move(board);
  std::future<QueryOutcome> future = task.promise.get_future();
  if (shutdown_.load(std::memory_order_acquire)) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(CancelledOutcome());
    return future;
  }
  if (!queue_.Push(std::move(task))) {
    // Raced with a concurrent Shutdown: the queue dropped the task (and its
    // promise), so hand back a fresh, already-cancelled future instead.
    std::promise<QueryOutcome> promise;
    future = promise.get_future();
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(CancelledOutcome());
  }
  return future;
}

std::vector<QueryOutcome> QueryExecutor::RunBatch(
    const std::vector<QueryRequest>& requests) {
  // One fresh bound board per batch (only worth allocating when a sibling
  // could exist). Fresh per call keeps RunBatch deterministic run to run:
  // nothing published here outlives the batch.
  std::shared_ptr<internal::BatchBoundBoard> board;
  if (share_batch_bounds_ && requests.size() > 1) {
    board = std::make_shared<internal::BatchBoundBoard>();
  }
  std::vector<std::future<QueryOutcome>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(SubmitTask(request, board));
  }
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (std::future<QueryOutcome>& future : futures) {
    outcomes.push_back(future.get());
  }
  return outcomes;
}

std::vector<QueryOutcome> QueryExecutor::RunBatch(
    const std::vector<Trajectory>& queries, int k,
    const MstOptions& base_options) {
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  MstOptions options = base_options;
  options.k = k;
  for (const Trajectory& query : queries) {
    requests.emplace_back(query, query.Lifespan(), options);
  }
  return RunBatch(requests);
}

void QueryExecutor::Shutdown(DrainMode mode) {
  shutdown_.store(true, std::memory_order_release);
  std::vector<Task> abandoned;
  if (mode == DrainMode::kCancelPending) {
    abandoned = queue_.CloseAndDrain();
  } else {
    queue_.Close();
  }
  for (Task& task : abandoned) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(CancelledOutcome());
  }
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace mst
