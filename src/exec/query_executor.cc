#include "src/exec/query_executor.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace mst {
namespace {

QueryOutcome CancelledOutcome() {
  QueryOutcome out;
  out.cancelled = true;
  return out;
}

}  // namespace

QueryExecutor::QueryExecutor(const TrajectoryIndex* index,
                             const TrajectoryStore* store,
                             const Options& options)
    : index_(index),
      store_(store),
      searcher_(index, store),
      queue_(options.queue_capacity) {
  MST_CHECK(index != nullptr && store != nullptr);
  int workers = options.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() { Shutdown(DrainMode::kDrain); }

void QueryExecutor::WorkerLoop() {
  while (std::optional<Task> task = queue_.Pop()) {
    QueryOutcome out;
    out.results = searcher_.Search(task->request.query, task->request.period,
                                   task->request.options, &out.stats);
    completed_.fetch_add(1, std::memory_order_relaxed);
    task->promise.set_value(std::move(out));
  }
}

std::future<QueryOutcome> QueryExecutor::Submit(QueryRequest request) {
  Task task(std::move(request));
  std::future<QueryOutcome> future = task.promise.get_future();
  if (shutdown_.load(std::memory_order_acquire)) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(CancelledOutcome());
    return future;
  }
  if (!queue_.Push(std::move(task))) {
    // Raced with a concurrent Shutdown: the queue dropped the task (and its
    // promise), so hand back a fresh, already-cancelled future instead.
    std::promise<QueryOutcome> promise;
    future = promise.get_future();
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(CancelledOutcome());
  }
  return future;
}

std::vector<QueryOutcome> QueryExecutor::RunBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<std::future<QueryOutcome>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (std::future<QueryOutcome>& future : futures) {
    outcomes.push_back(future.get());
  }
  return outcomes;
}

std::vector<QueryOutcome> QueryExecutor::RunBatch(
    const std::vector<Trajectory>& queries, int k,
    const MstOptions& base_options) {
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  MstOptions options = base_options;
  options.k = k;
  for (const Trajectory& query : queries) {
    requests.emplace_back(query, query.Lifespan(), options);
  }
  return RunBatch(requests);
}

void QueryExecutor::Shutdown(DrainMode mode) {
  shutdown_.store(true, std::memory_order_release);
  std::vector<Task> abandoned;
  if (mode == DrainMode::kCancelPending) {
    abandoned = queue_.CloseAndDrain();
  } else {
    queue_.Close();
  }
  for (Task& task : abandoned) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(CancelledOutcome());
  }
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace mst
