// Per-candidate bookkeeping of the BFMST algorithm (§4): the list the paper
// keeps in its Valid/Completed hash structures for each partially retrieved
// trajectory — covered time intervals with their boundary distances, the
// accumulated (partial) DISSIM and its Lemma 1 error, and the derived
// OPTDISSIM / PESDISSIM / OPTDISSIMINC values.

#ifndef MST_CORE_CANDIDATE_H_
#define MST_CORE_CANDIDATE_H_

#include <vector>

#include "src/core/dissim.h"
#include "src/geom/interval.h"
#include "src/geom/trajectory.h"

namespace mst {

/// Coverage state of one candidate trajectory during a BFMST run. Pieces are
/// added as leaf entries are retrieved from the index (in arbitrary order —
/// best-first traversal does not respect time order); the list maintains
/// them sorted and merged.
class CandidateList {
 public:
  /// A candidate for query period `period` (positive duration).
  CandidateList(TrajectoryId id, const TimeInterval& period);

  TrajectoryId id() const { return id_; }
  const TimeInterval& period() const { return period_; }

  /// Records the retrieved interval `window` together with its distance
  /// integral and the query-candidate distances at the window boundaries.
  /// `window` must have positive duration, lie inside the period, and not
  /// overlap previously added pieces by more than measure zero (checked):
  /// index segments of one trajectory are time-disjoint.
  void AddPiece(const TimeInterval& window, const DissimResult& integral,
                double dist_begin, double dist_end);

  /// True once the covered pieces span the whole query period.
  bool IsComplete() const;

  /// Total uncovered duration within the period.
  double UncoveredDuration() const;

  /// Accumulated DISSIM over the covered pieces (partial until complete).
  const DissimResult& covered() const { return covered_; }

  /// OPTDISSIM (Definition 3): covered lower bound + optimistic gap
  /// integrals. A true lower bound of DISSIM (Lemma 2); the covered part
  /// enters through its error-adjusted lower bound so the result stays a
  /// valid bound under trapezoid integration.
  double OptDissim(double vmax) const;

  /// PESDISSIM (Definition 4): covered value + pessimistic gap integrals;
  /// a true upper bound of DISSIM (Lemma 3).
  double PesDissim(double vmax) const;

  /// OPTDISSIMINC (Definition 5): covered lower bound + mindist · uncovered
  /// duration. A lower bound of DISSIM when nodes are delivered in
  /// non-decreasing MINDIST order and `mindist` is the current node's.
  double OptDissimInc(double mindist) const;

  /// Number of disjoint covered pieces (after merging).
  size_t PieceCount() const { return pieces_.size(); }

  /// True iff `window` lies inside one covered piece. Segment windows are
  /// atomic (a segment is either fully retrieved or not), so this decides
  /// whether a fetched segment was already accounted for.
  bool CoversInterval(const TimeInterval& window) const;

 private:
  struct Piece {
    double begin;
    double end;
    double dist_begin;
    double dist_end;
  };

  // Walks the gaps between pieces, summing gap(d0, d1, interior?) values.
  template <typename EdgeFn, typename InteriorFn>
  double SumGaps(double vmax, EdgeFn edge, InteriorFn interior) const;

  TrajectoryId id_;
  TimeInterval period_;
  std::vector<Piece> pieces_;  // sorted by begin, disjoint
  DissimResult covered_;
};

}  // namespace mst

#endif  // MST_CORE_CANDIDATE_H_
