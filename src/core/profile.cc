#include "src/core/profile.h"

#include <algorithm>
#include <vector>

#include "src/core/dissim.h"
#include "src/geom/moving_distance.h"
#include "src/util/check.h"

namespace mst {

DistanceExtrema ComputeDistanceExtrema(const Trajectory& q,
                                       const Trajectory& t,
                                       const TimeInterval& period) {
  MST_CHECK(q.Covers(period) && t.Covers(period));
  DistanceExtrema out;
  const double d0 = DistanceAt(q, t, period.begin);
  out.min_distance = d0;
  out.min_at = period.begin;
  out.max_distance = d0;
  out.max_at = period.begin;
  if (period.Duration() == 0.0) return out;

  std::vector<double> cuts;
  cuts.push_back(period.begin);
  for (const TPoint& s : q.samples()) {
    if (s.t > period.begin && s.t < period.end) cuts.push_back(s.t);
  }
  for (const TPoint& s : t.samples()) {
    if (s.t > period.begin && s.t < period.end) cuts.push_back(s.t);
  }
  cuts.push_back(period.end);
  std::sort(cuts.begin(), cuts.end());

  Vec2 q_prev = *q.PositionAt(cuts.front());
  Vec2 t_prev = *t.PositionAt(cuts.front());
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double t0 = cuts[i];
    const double t1 = cuts[i + 1];
    if (t1 <= t0) continue;
    const Vec2 q_next = *q.PositionAt(t1);
    const Vec2 t_next = *t.PositionAt(t1);
    const DistanceTrinomial tri =
        DistanceTrinomial::Between(q_prev, q_next, t_prev, t_next, t1 - t0);
    // Interior or boundary minimum of this convex piece.
    const double arg = tri.ArgMinTau();
    const double piece_min = tri.ValueAt(arg);
    if (piece_min < out.min_distance) {
      out.min_distance = piece_min;
      out.min_at = t0 + arg;
    }
    // Maximum of a convex piece sits at its right boundary (the left one
    // was covered as the previous piece's right, or as the period begin).
    const double d_end = tri.ValueAt(tri.dur);
    if (d_end > out.max_distance) {
      out.max_distance = d_end;
      out.max_at = t1;
    }
    q_prev = q_next;
    t_prev = t_next;
  }
  return out;
}

std::vector<ProfilePoint> SampleDistanceProfile(const Trajectory& q,
                                                const Trajectory& t,
                                                const TimeInterval& period,
                                                int samples) {
  MST_CHECK(samples >= 2);
  MST_CHECK(q.Covers(period) && t.Covers(period));
  std::vector<ProfilePoint> out;
  out.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double time =
        period.begin +
        period.Duration() * static_cast<double>(i) / (samples - 1);
    out.push_back({time, DistanceAt(q, t, time)});
  }
  return out;
}

}  // namespace mst
