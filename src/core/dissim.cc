#include "src/core/dissim.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/dissim_batch.h"
#include "src/util/check.h"

namespace mst {
namespace {

// Antiderivative of sqrt(a τ² + b τ + c) for a > 0 and 4ac − b² > 0.
double Antiderivative(double a, double b, double disc, double tau, double f) {
  const double root_f = std::sqrt(f);
  const double u = 2.0 * a * tau + b;
  return u * root_f / (4.0 * a) +
         disc / (8.0 * a * std::sqrt(a)) * std::asinh(u / std::sqrt(disc));
}

// ∫₀^L sqrt(a)·|τ − τ0| dτ (perfect-square trinomial).
double PerfectSquareIntegral(double a, double tau0, double len) {
  const double root_a = std::sqrt(a);
  if (tau0 <= 0.0) {
    return root_a * (len * len / 2.0 - tau0 * len);
  }
  if (tau0 >= len) {
    return root_a * (tau0 * len - len * len / 2.0);
  }
  const double left = tau0;
  const double right = len - tau0;
  return root_a * (left * left + right * right) / 2.0;
}

}  // namespace

double ExactSegmentIntegral(const DistanceTrinomial& tri) {
  const double len = tri.dur;
  MST_DCHECK(len > 0.0);
  if (tri.a <= 0.0) {
    // a == 0 implies b == 0 (the trinomial is a squared norm): constant D.
    return std::sqrt(std::max(0.0, tri.c)) * len;
  }
  // Near-constant guard: when the quadratic term is negligible against c,
  // the closed form suffers catastrophic cancellation (u/√disc with both
  // tiny). D is then flat to ~1e-12 relative and Simpson's rule is exact to
  // far beyond double precision (|b| ≤ 2√(ac) keeps the linear term small
  // with it).
  if (tri.a * len * len <= 1e-12 * tri.c) {
    return (tri.ValueAt(0.0) + 4.0 * tri.ValueAt(0.5 * len) +
            tri.ValueAt(len)) /
           6.0 * len;
  }
  double disc = tri.FourAcMinusB2();
  // Relative threshold: treat a tiny (possibly negative, from rounding)
  // discriminant as the perfect-square case.
  const double scale = std::max({tri.b * tri.b, 4.0 * tri.a * std::abs(tri.c),
                                 1e-300});
  if (disc <= 1e-12 * scale) {
    return PerfectSquareIntegral(tri.a, tri.FlexTau(), len);
  }
  const double f0 = tri.SquaredAt(0.0);
  const double f1 = tri.SquaredAt(len);
  return Antiderivative(tri.a, tri.b, disc, len, f1) -
         Antiderivative(tri.a, tri.b, disc, 0.0, f0);
}

DissimResult TrapezoidSegmentIntegral(const DistanceTrinomial& tri) {
  const double len = tri.dur;
  MST_DCHECK(len > 0.0);
  DissimResult r;
  r.value = 0.5 * (tri.ValueAt(0.0) + tri.ValueAt(len)) * len;
  if (tri.a <= 0.0) {
    r.error_bound = 0.0;  // constant distance: trapezoid is exact
    return r;
  }
  // Lemma 1: |E| <= len³/12 · max D'' over [0, len]; D'' peaks where the
  // trinomial is smallest (at the flex −b/2a clamped into the interval).
  const double second = tri.SecondDerivativeAt(tri.ArgMinTau());
  double bound = len * len * len / 12.0 * second;
  if (!(bound < r.value)) {
    // Unbounded (touching distance zero) or looser than the trivial bound:
    // the integral is non-negative and the trapezoid over-estimates, so the
    // value itself always bounds the error.
    bound = r.value;
  }
  r.error_bound = bound;
  return r;
}

DissimResult IntegrateSegment(const DistanceTrinomial& tri,
                              IntegrationPolicy policy) {
  switch (policy) {
    case IntegrationPolicy::kExact:
      return {ExactSegmentIntegral(tri), 0.0};
    case IntegrationPolicy::kTrapezoid:
      return TrapezoidSegmentIntegral(tri);
    case IntegrationPolicy::kAdaptive: {
      const DissimResult approx = TrapezoidSegmentIntegral(tri);
      if (approx.error_bound <= kAdaptiveRelTol * approx.value) {
        return approx;
      }
      return {ExactSegmentIntegral(tri), 0.0};
    }
  }
  MST_CHECK_MSG(false, "unknown integration policy");
}

double DistanceAt(const Trajectory& q, const Trajectory& t, double time) {
  const std::optional<Vec2> pq = q.PositionAt(time);
  const std::optional<Vec2> pt = t.PositionAt(time);
  MST_CHECK_MSG(pq.has_value() && pt.has_value(),
                "DistanceAt outside a trajectory's lifespan");
  return Distance(*pq, *pt);
}

DissimResult ComputeDissim(const Trajectory& q, const Trajectory& t,
                           const TimeInterval& period,
                           IntegrationPolicy policy) {
  MST_CHECK_MSG(q.Covers(period) && t.Covers(period),
                "DISSIM requires both trajectories valid over the period");
  DissimResult total;
  if (period.Duration() == 0.0) return total;

  // Merge the two timestamp sequences restricted to the open period.
  static thread_local std::vector<double> cuts;
  cuts.clear();
  cuts.reserve(q.size() + t.size() + 2);
  cuts.push_back(period.begin);
  for (const TPoint& s : q.samples()) {
    if (s.t > period.begin && s.t < period.end) cuts.push_back(s.t);
  }
  for (const TPoint& s : t.samples()) {
    if (s.t > period.begin && s.t < period.end) cuts.push_back(s.t);
  }
  cuts.push_back(period.end);
  std::sort(cuts.begin(), cuts.end());

  // Materialize every elementary interval's trinomial into a reused SoA
  // batch, then integrate in one pass: IntegrateBatch reproduces the scalar
  // per-interval accumulation bit-for-bit while letting the trapezoid values
  // vectorize.
  static thread_local TrinomialBatch batch;
  batch.Clear();
  batch.Reserve(cuts.size());
  std::optional<Vec2> q_prev = q.PositionAt(cuts.front());
  std::optional<Vec2> t_prev = t.PositionAt(cuts.front());
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double t0 = cuts[i];
    const double t1 = cuts[i + 1];
    if (t1 <= t0) continue;  // duplicate timestamps
    const std::optional<Vec2> q_next = q.PositionAt(t1);
    const std::optional<Vec2> t_next = t.PositionAt(t1);
    MST_DCHECK(q_prev && t_prev && q_next && t_next);
    batch.Add(
        DistanceTrinomial::Between(*q_prev, *q_next, *t_prev, *t_next, t1 - t0));
    q_prev = q_next;
    t_prev = t_next;
  }
  total = IntegrateBatch(batch, policy);
  return total;
}

namespace {

// Shared core of the two ComputeSegmentDissim overloads: integrates the
// moving segment a → b against q over `window`. Both overloads feed the
// same scalars through here, so the columnar (LeafView) path is
// bit-identical to the LeafEntry path.
SegmentDissim SegmentDissimCore(const Trajectory& q, const TPoint& a,
                                const TPoint& b, const TimeInterval& window,
                                IntegrationPolicy policy) {
  MST_CHECK(window.Duration() > 0.0);
  MST_CHECK(a.t <= window.begin && window.end <= b.t);
  MST_CHECK(q.Covers(window));

  auto entry_pos = [&](double time) { return Lerp(a, b, time); };

  // Called once per candidate leaf entry on the k-MST hot path: reuse the
  // cuts scratch (reserve makes even a thread's first leaf allocation-free
  // after warmup — at most q.size() interior samples + 2 endpoints) and
  // route the per-interval integrals through the batch kernel (bit-for-bit
  // identical to the scalar loop, see IntegrateBatch).
  static thread_local std::vector<double> cuts;
  cuts.clear();
  cuts.reserve(q.size() + 2);
  cuts.push_back(window.begin);
  for (const TPoint& s : q.samples()) {
    if (s.t > window.begin && s.t < window.end) cuts.push_back(s.t);
  }
  cuts.push_back(window.end);
  // Query samples are already sorted; cuts is sorted by construction.

  static thread_local TrinomialBatch batch;
  batch.Clear();
  batch.Reserve(cuts.size());
  SegmentDissim out;
  Vec2 q_prev = *q.PositionAt(cuts.front());
  Vec2 e_prev = entry_pos(cuts.front());
  out.dist_begin = Distance(q_prev, e_prev);
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double t0 = cuts[i];
    const double t1 = cuts[i + 1];
    if (t1 <= t0) continue;
    const Vec2 q_next = *q.PositionAt(t1);
    const Vec2 e_next = entry_pos(t1);
    batch.Add(
        DistanceTrinomial::Between(q_prev, q_next, e_prev, e_next, t1 - t0));
    q_prev = q_next;
    e_prev = e_next;
  }
  out.integral = IntegrateBatch(batch, policy);
  out.dist_end = Distance(q_prev, e_prev);
  return out;
}

}  // namespace

SegmentDissim ComputeSegmentDissim(const Trajectory& q, const LeafEntry& entry,
                                   const TimeInterval& window,
                                   IntegrationPolicy policy) {
  return SegmentDissimCore(q, entry.Start(), entry.End(), window, policy);
}

SegmentDissim ComputeSegmentDissim(const Trajectory& q, const LeafView& view,
                                   int i, const TimeInterval& window,
                                   IntegrationPolicy policy) {
  MST_DCHECK(i >= 0 && i < view.count);
  return SegmentDissimCore(q, {view.t0[i], {view.x0[i], view.y0[i]}},
                           {view.t1[i], {view.x1[i], view.y1[i]}}, window,
                           policy);
}

}  // namespace mst
