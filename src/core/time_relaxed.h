// Time-Relaxed MST (the paper's §6 future work, implemented here as an
// extension): the minimum DISSIM between a query trajectory and a data
// trajectory over all temporal shifts of the query — "how similar are the
// routes, regardless of when the query object departs".

#ifndef MST_CORE_TIME_RELAXED_H_
#define MST_CORE_TIME_RELAXED_H_

#include <vector>

#include "src/core/dissim.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"

namespace mst {

/// Minimum-dissimilarity shift of a query against one trajectory.
struct TimeRelaxedMatch {
  TrajectoryId id = kInvalidTrajectoryId;
  /// Amount added to every query timestamp at the optimum.
  double shift = 0.0;
  /// DISSIM of the shifted query against the trajectory over the shifted
  /// query's full duration.
  double dissim = 0.0;
};

/// Returns the query translated by `shift` in time (positions unchanged).
Trajectory ShiftInTime(const Trajectory& query, double shift);

/// Minimizes s ↦ DISSIM(shift(Q, s), T) over the shifts that keep the whole
/// (shifted) query period inside T's lifespan. The objective is piecewise
/// smooth but not convex; the minimizer samples `coarse_steps` + 1 shifts
/// uniformly, then refines the best bracket by golden-section search to
/// relative precision `tol` of the shift range. Returns nullopt when T's
/// lifespan is shorter than the query's duration (no feasible shift).
std::optional<TimeRelaxedMatch> TimeRelaxedDissim(const Trajectory& query,
                                                  const Trajectory& t,
                                                  int coarse_steps = 64,
                                                  double tol = 1e-4);

/// Linear-scan k-most-similar under the time-relaxed metric (ascending
/// dissim, ties by id). Trajectories without a feasible shift are skipped.
std::vector<TimeRelaxedMatch> TimeRelaxedKMst(
    const TrajectoryStore& store, const Trajectory& query, int k,
    TrajectoryId exclude_id = kInvalidTrajectoryId, int coarse_steps = 64);

/// Instrumentation of the index-accelerated variant.
struct TimeRelaxedSearchStats {
  int64_t nodes_accessed = 0;
  int64_t total_nodes = 0;
  /// Candidates whose exact time-relaxed dissimilarity was computed (the
  /// expensive refinement step the index exists to avoid).
  int64_t candidates_refined = 0;
  bool terminated_early = false;
};

/// Index-accelerated Time-Relaxed k-MST — this repository's realization of
/// the paper's §6 "TRMST over trajectories indexed by R-tree-like
/// structures" future work.
///
/// Because the shift is free, temporal pruning is unavailable; instead the
/// index is traversed best-first by the *time-free* spatial distance
/// between the query's path and each node's spatial footprint. For any
/// shift, the synchronized position of a data trajectory lies on its own
/// spatial path, so
///     DISSIM(shift(Q, s), T) >= duration(Q) · dist(path(Q), path(T))
/// and an unseen trajectory (all segments in unpopped nodes of key >= d)
/// cannot beat duration(Q) · d — the termination test. Newly encountered
/// candidates are refined exactly via TimeRelaxedDissim from the store.
std::vector<TimeRelaxedMatch> TimeRelaxedIndexKMst(
    const TrajectoryIndex& index, const TrajectoryStore& store,
    const Trajectory& query, int k,
    TrajectoryId exclude_id = kInvalidTrajectoryId, int coarse_steps = 64,
    TimeRelaxedSearchStats* stats = nullptr);

}  // namespace mst

#endif  // MST_CORE_TIME_RELAXED_H_
