#include "src/core/result_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/util/check.h"

namespace mst {
namespace {

// Per-thread tallies backing ThreadHits/ThreadMisses. A query runs on one
// thread, so before/after deltas are exactly its own hits and misses even
// when other threads use the same cache concurrently.
thread_local int64_t tls_hits = 0;
thread_local int64_t tls_misses = 0;

// splitmix64 finalizer — full-avalanche 64-bit mixing.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct KeyHash {
  size_t operator()(const ResultCacheKey& k) const {
    uint64_t h = k.fingerprint.lo;
    h = Mix(h ^ k.fingerprint.hi);
    h = Mix(h ^ static_cast<uint64_t>(k.traj_id));
    h = Mix(h ^ std::bit_cast<uint64_t>(k.period.begin));
    h = Mix(h ^ std::bit_cast<uint64_t>(k.period.end));
    h = Mix(h ^ static_cast<uint64_t>(k.policy));
    return static_cast<size_t>(h);
  }
};

}  // namespace

namespace internal {

struct ResultCacheEntry {
  ResultCacheKey key;
  DissimResult value;
  uint64_t version = 0;
};

struct ResultCacheShard {
  mutable std::mutex mu;
  // front = most recently used.
  std::list<ResultCacheEntry> lru;
  std::unordered_map<ResultCacheKey, std::list<ResultCacheEntry>::iterator,
                     KeyHash>
      index;
  size_t budget = 1;  // entries this shard may keep resident
};

}  // namespace internal

using internal::ResultCacheShard;

QueryFingerprint FingerprintQuery(const Trajectory& query) {
  // Two independent streams over the raw sample bits: stream A is FNV-1a,
  // stream B folds each word through the splitmix64 finalizer with a
  // different seed. Sample count is mixed in so a prefix cannot alias the
  // whole.
  uint64_t a = 1469598103934665603ull;  // FNV offset basis
  uint64_t b = Mix(0x517cc1b727220a95ull ^ query.size());
  const auto feed = [&a, &b](uint64_t word) {
    a = (a ^ word) * 1099511628211ull;  // FNV prime
    b = Mix(b ^ word);
  };
  for (const TPoint& s : query.samples()) {
    feed(std::bit_cast<uint64_t>(s.t));
    feed(std::bit_cast<uint64_t>(s.p.x));
    feed(std::bit_cast<uint64_t>(s.p.y));
  }
  return {Mix(a), b};
}

int64_t ResultCache::ThreadHits() { return tls_hits; }
int64_t ResultCache::ThreadMisses() { return tls_misses; }

ResultCache::ResultCache(size_t capacity_entries, size_t num_shards)
    : capacity_(capacity_entries) {
  if (num_shards == 0) {
    num_shards =
        std::min(kDefaultShards, std::max<size_t>(capacity_entries, 1));
  }
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ResultCacheShard>());
  }
  AssignShardBudgets();
}

ResultCache::~ResultCache() = default;

ResultCacheShard& ResultCache::ShardFor(const ResultCacheKey& key) const {
  return *shards_[KeyHash()(key) % shards_.size()];
}

void ResultCache::AssignShardBudgets() {
  const size_t n = shards_.size();
  for (size_t i = 0; i < n; ++i) {
    shards_[i]->budget =
        std::max<size_t>(1, capacity_ / n + (i < capacity_ % n));
  }
}

void ResultCache::EvictLocked(ResultCacheShard& shard) {
  while (shard.lru.size() > shard.budget) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

bool ResultCache::Lookup(const ResultCacheKey& key, uint64_t write_version,
                         DissimResult* out) const {
  MST_DCHECK(out != nullptr);
  if (!enabled()) return false;
  ResultCacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++tls_misses;
    return false;
  }
  if (it->second->version != write_version) {
    // The index ingested segments for this trajectory since the entry was
    // computed — drop it so it can never be served again.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++tls_misses;
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++tls_hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = shard.lru.front().value;
  return true;
}

void ResultCache::Insert(const ResultCacheKey& key, const DissimResult& value,
                        uint64_t write_version, double cost) {
  if (!enabled()) return;
  bool skip = false;
  if (adaptive_admission_.load(std::memory_order_relaxed)) {
    if (std::isfinite(cost)) {
      // Frugal-style streaming median: compare against the pre-update
      // estimate, then nudge the estimate one step toward this cost. The
      // read-modify-write is deliberately non-atomic across threads — a
      // lost step only slows convergence of a pressure heuristic.
      const double est = admission_estimate_.load(std::memory_order_relaxed);
      skip = cost < est;
      const double step = std::max(1.0, std::fabs(est) / 16.0);
      if (cost > est) {
        admission_estimate_.store(est + step, std::memory_order_relaxed);
      } else if (cost < est) {
        admission_estimate_.store(std::max(0.0, est - step),
                                  std::memory_order_relaxed);
      }
    }
  } else if (cost < min_admission_cost_.load(std::memory_order_relaxed)) {
    skip = true;
  }
  if (skip) {
    admission_skips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ResultCacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place: even if this insert lost a race and carries an older
    // version than the resident entry, the version check at lookup keeps a
    // stale value from ever being served.
    it->second->value = value;
    it->second->version = write_version;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front({key, value, write_version});
  shard.index[key] = shard.lru.begin();
  EvictLocked(shard);
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

void ResultCache::SetCapacity(size_t capacity_entries) {
  capacity_ = capacity_entries;
  AssignShardBudgets();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (capacity_ == 0) {
      shard->lru.clear();
      shard->index.clear();
    } else {
      EvictLocked(*shard);
    }
  }
}

size_t ResultCache::resident_entries() const {
  size_t resident = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    resident += shard->lru.size();
  }
  return resident;
}

}  // namespace mst
