#include "src/core/linear_scan.h"

#include <algorithm>

#include "src/util/check.h"

namespace mst {

std::vector<MstResult> LinearScanKMst(const TrajectoryStore& store,
                                      const Trajectory& query,
                                      const TimeInterval& period, int k,
                                      IntegrationPolicy policy,
                                      TrajectoryId exclude_id) {
  MST_CHECK(k >= 1);
  MST_CHECK(period.Duration() > 0.0);
  MST_CHECK(query.Covers(period));

  std::vector<MstResult> all;
  all.reserve(store.size());
  for (const Trajectory& t : store.trajectories()) {
    if (t.id() == exclude_id) continue;
    if (!t.Covers(period)) continue;
    const DissimResult d = ComputeDissim(query, t, period, policy);
    all.push_back({t.id(), d.value, d.error_bound});
  }
  std::sort(all.begin(), all.end(), [](const MstResult& a, const MstResult& b) {
    if (a.dissim != b.dissim) return a.dissim < b.dissim;
    return a.id < b.id;
  });
  if (all.size() > static_cast<size_t>(k)) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

}  // namespace mst
