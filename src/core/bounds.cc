#include "src/core/bounds.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mst {

double LDD(double d0, double v, double dt) {
  MST_DCHECK(d0 >= 0.0);
  MST_DCHECK(dt >= 0.0);
  if (dt == 0.0) return 0.0;
  if (d0 + v * dt >= 0.0) {
    return dt * (d0 + v * dt / 2.0);
  }
  // The object reaches distance 0 at t = d0/|v| and stays there.
  return d0 * d0 / (2.0 * std::abs(v));
}

double OptimisticEdgeGap(double d_known, double vmax, double dt) {
  MST_DCHECK(vmax >= 0.0);
  return LDD(d_known, -vmax, dt);
}

double PessimisticEdgeGap(double d_known, double vmax, double dt) {
  MST_DCHECK(vmax >= 0.0);
  return LDD(d_known, vmax, dt);
}

double OptimisticInteriorGap(double d0, double d1, double vmax, double dt) {
  MST_DCHECK(d0 >= 0.0 && d1 >= 0.0 && dt >= 0.0);
  MST_DCHECK(vmax >= 0.0);
  if (dt == 0.0) return 0.0;
  if (vmax == 0.0) {
    // Distances cannot change; up to rounding d0 == d1.
    return 0.5 * (d0 + d1) * dt;
  }
  // Turning instant offset from the gap start: the intersection of the
  // descending leg d0 − V_max·t with the leg rising into d1, i.e.
  // (Δt + (d0 − d1)/V_max)/2. (The paper prints (D_{k+1} − D_k) here, which
  // is a sign typo: with d0 = 2, d1 = 0 the optimistic profile must descend
  // for the whole gap, which only the (d0 − d1) form yields.) Clamped into
  // the gap: a boundary-distance difference steeper than V_max can only
  // arise from rounding (V_max is a global speed bound).
  const double leg1 = std::clamp((dt + (d0 - d1) / vmax) / 2.0, 0.0, dt);
  return LDD(d0, -vmax, leg1) + LDD(d1, -vmax, dt - leg1);
}

double PessimisticInteriorGap(double d0, double d1, double vmax, double dt) {
  MST_DCHECK(d0 >= 0.0 && d1 >= 0.0 && dt >= 0.0);
  MST_DCHECK(vmax >= 0.0);
  if (dt == 0.0) return 0.0;
  if (vmax == 0.0) {
    return 0.5 * (d0 + d1) * dt;
  }
  // Roof vertex: intersection of d0 + V_max·t with the leg descending into
  // d1, i.e. (Δt + (d1 − d0)/V_max)/2 (mirrored sign typo in the paper; see
  // OptimisticInteriorGap).
  const double leg1 = std::clamp((dt + (d1 - d0) / vmax) / 2.0, 0.0, dt);
  // Both legs rise toward the roof vertex: evaluate each from its boundary
  // distance outward (the second leg in reversed time), diverging at V_max.
  return LDD(d0, vmax, leg1) + LDD(d1, vmax, dt - leg1);
}

}  // namespace mst
