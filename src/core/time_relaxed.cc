#include "src/core/time_relaxed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/geom/mindist.h"
#include "src/util/check.h"

namespace mst {
namespace {

// DISSIM of the query shifted by `s` against `t`, over the shifted query's
// full duration (exact integration: this is an offline analysis metric).
double ObjectiveAt(const Trajectory& query, const Trajectory& t, double s) {
  const Trajectory shifted = ShiftInTime(query, s);
  return ComputeDissim(shifted, t, shifted.Lifespan(),
                       IntegrationPolicy::kExact)
      .value;
}

}  // namespace

Trajectory ShiftInTime(const Trajectory& query, double shift) {
  std::vector<TPoint> samples = query.samples();
  for (TPoint& p : samples) p.t += shift;
  return Trajectory(query.id(), std::move(samples));
}

std::optional<TimeRelaxedMatch> TimeRelaxedDissim(const Trajectory& query,
                                                  const Trajectory& t,
                                                  int coarse_steps,
                                                  double tol) {
  MST_CHECK(coarse_steps >= 1);
  const double q_dur = query.Lifespan().Duration();
  MST_CHECK_MSG(q_dur > 0.0, "time-relaxed search needs a moving query");
  // Feasible shifts keep [q.start + s, q.end + s] inside t's lifespan.
  const double s_lo = t.start_time() - query.start_time();
  const double s_hi = t.end_time() - query.end_time();
  if (s_hi < s_lo) return std::nullopt;

  // Coarse sampling.
  double best_s = s_lo;
  double best_v = ObjectiveAt(query, t, s_lo);
  const double span = s_hi - s_lo;
  const int steps = span > 0.0 ? coarse_steps : 0;
  for (int i = 1; i <= steps; ++i) {
    const double s = s_lo + span * static_cast<double>(i) / steps;
    const double v = ObjectiveAt(query, t, s);
    if (v < best_v) {
      best_v = v;
      best_s = s;
    }
  }

  // Golden-section refinement inside the bracket around the best sample.
  if (span > 0.0) {
    const double step = span / steps;
    double a = std::max(s_lo, best_s - step);
    double b = std::min(s_hi, best_s + step);
    const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = ObjectiveAt(query, t, c);
    double fd = ObjectiveAt(query, t, d);
    const double abs_tol = std::max(tol * span, 1e-12);
    while (b - a > abs_tol) {
      if (fc < fd) {
        b = d;
        d = c;
        fd = fc;
        c = b - inv_phi * (b - a);
        fc = ObjectiveAt(query, t, c);
      } else {
        a = c;
        c = d;
        fc = fd;
        d = a + inv_phi * (b - a);
        fd = ObjectiveAt(query, t, d);
      }
    }
    const double s_mid = 0.5 * (a + b);
    const double v_mid = ObjectiveAt(query, t, s_mid);
    if (v_mid < best_v) {
      best_v = v_mid;
      best_s = s_mid;
    }
  }

  return TimeRelaxedMatch{t.id(), best_s, best_v};
}

namespace {

// Time-free spatial distance between the query's path (as a polyline) and a
// rectangle footprint: the key ordering nodes in the index-accelerated
// search. The moving-point machinery doubles as a static segment-to-rect
// distance (time is just the parameterization).
double PathRectDistance(const Trajectory& query, const Mbb3& box) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < query.size(); ++i) {
    const Vec2 a = query.sample(i).p;
    const Vec2 b = query.sample(i + 1).p;
    if (a == b) {
      best = std::min(best,
                      PointRectDistance(a, box.xlo, box.ylo, box.xhi,
                                        box.yhi));
    } else {
      best = std::min(best, MovingPointRectMinDistance(a, b, 1.0, box.xlo,
                                                       box.ylo, box.xhi,
                                                       box.yhi));
    }
    if (best <= 0.0) return 0.0;
  }
  if (query.size() == 1) {
    best = PointRectDistance(query.sample(0).p, box.xlo, box.ylo, box.xhi,
                             box.yhi);
  }
  return best;
}

}  // namespace

std::vector<TimeRelaxedMatch> TimeRelaxedIndexKMst(
    const TrajectoryIndex& index, const TrajectoryStore& store,
    const Trajectory& query, int k, TrajectoryId exclude_id, int coarse_steps,
    TimeRelaxedSearchStats* stats_out) {
  MST_CHECK(k >= 1);
  TimeRelaxedSearchStats stats;
  stats.total_nodes = index.NodeCount();
  const int64_t accesses_before = TrajectoryIndex::ThreadNodeAccesses();

  std::vector<TimeRelaxedMatch> results;
  if (index.empty()) {
    if (stats_out != nullptr) *stats_out = stats;
    return results;
  }
  const double q_dur = query.Lifespan().Duration();

  struct QueueEntry {
    double dist;
    PageId page;
    bool operator>(const QueueEntry& o) const {
      if (dist != o.dist) return dist > o.dist;
      return page > o.page;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({0.0, index.root()});

  std::unordered_set<TrajectoryId> seen;
  std::set<std::pair<double, TrajectoryId>> best;  // exact refined dissims
  auto kth = [&]() {
    if (static_cast<int>(best.size()) < k) {
      return std::numeric_limits<double>::infinity();
    }
    auto it = best.begin();
    std::advance(it, k - 1);
    return it->first;
  };

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    // DISSIM of any shift of Q against any trajectory whose segments all
    // live at spatial distance >= top.dist is at least q_dur * top.dist.
    if (q_dur * top.dist >= kth()) {
      stats.terminated_early = true;
      break;
    }
    const NodeRef node = index.ReadNode(top.page);
    if (node->IsLeaf()) {
      for (const LeafEntry& e : node->leaves) {
        if (e.traj_id == exclude_id || seen.contains(e.traj_id)) continue;
        seen.insert(e.traj_id);
        const Trajectory* t = store.Find(e.traj_id);
        if (t == nullptr) continue;
        const std::optional<TimeRelaxedMatch> match =
            TimeRelaxedDissim(query, *t, coarse_steps);
        ++stats.candidates_refined;
        if (match.has_value()) {
          best.insert({match->dissim, match->id});
          results.push_back(*match);
        }
      }
      continue;
    }
    for (const InternalEntry& e : node->internals) {
      const double d = PathRectDistance(query, e.mbb);
      if (q_dur * d < kth()) queue.push({d, e.child});
    }
  }

  std::sort(results.begin(), results.end(),
            [](const TimeRelaxedMatch& a, const TimeRelaxedMatch& b) {
              if (a.dissim != b.dissim) return a.dissim < b.dissim;
              return a.id < b.id;
            });
  if (results.size() > static_cast<size_t>(k)) {
    results.resize(static_cast<size_t>(k));
  }
  stats.nodes_accessed =
      TrajectoryIndex::ThreadNodeAccesses() - accesses_before;
  if (stats_out != nullptr) *stats_out = stats;
  return results;
}

std::vector<TimeRelaxedMatch> TimeRelaxedKMst(const TrajectoryStore& store,
                                              const Trajectory& query, int k,
                                              TrajectoryId exclude_id,
                                              int coarse_steps) {
  MST_CHECK(k >= 1);
  std::vector<TimeRelaxedMatch> all;
  for (const Trajectory& t : store.trajectories()) {
    if (t.id() == exclude_id) continue;
    const std::optional<TimeRelaxedMatch> m =
        TimeRelaxedDissim(query, t, coarse_steps);
    if (m.has_value()) all.push_back(*m);
  }
  std::sort(all.begin(), all.end(),
            [](const TimeRelaxedMatch& a, const TimeRelaxedMatch& b) {
              if (a.dissim != b.dissim) return a.dissim < b.dissim;
              return a.id < b.id;
            });
  if (all.size() > static_cast<size_t>(k)) all.resize(static_cast<size_t>(k));
  return all;
}

}  // namespace mst
