// Analysis utilities over the inter-object distance function D(t): exact
// extrema over a period and sampled profiles for plotting/debugging. These
// are the quantities Figures 2–6 of the paper draw; having them as library
// functions makes the bounds machinery inspectable.

#ifndef MST_CORE_PROFILE_H_
#define MST_CORE_PROFILE_H_

#include <vector>

#include "src/geom/interval.h"
#include "src/geom/point.h"
#include "src/geom/trajectory.h"

namespace mst {

/// Exact extrema of D(t) = |Q(t) − T(t)| over `period`, with the instants
/// where they are attained.
struct DistanceExtrema {
  double min_distance = 0.0;
  double min_at = 0.0;
  double max_distance = 0.0;
  double max_at = 0.0;
};

/// Computes the exact extrema by per-elementary-interval trinomial analysis
/// (the minimum may be interior to an interval; the maximum is always at an
/// interval boundary since D is convex per interval). Both trajectories
/// must cover the period (checked).
DistanceExtrema ComputeDistanceExtrema(const Trajectory& q,
                                       const Trajectory& t,
                                       const TimeInterval& period);

/// One sampled point of a distance profile.
struct ProfilePoint {
  double t = 0.0;
  double distance = 0.0;
};

/// Samples D(t) at `samples` >= 2 uniformly spaced instants across `period`
/// (endpoints included). Exact at the sampled instants.
std::vector<ProfilePoint> SampleDistanceProfile(const Trajectory& q,
                                                const Trajectory& t,
                                                const TimeInterval& period,
                                                int samples);

}  // namespace mst

#endif  // MST_CORE_PROFILE_H_
