// Speed-dependent pruning metrics of §3.1: the Linearly Depended
// Dissimilarity (Definition 2) and the per-gap pieces of OPTDISSIM
// (Definition 3) and PESDISSIM (Definition 4).
//
// A "gap" is a sub-interval of the query period for which no segments of a
// candidate trajectory have been retrieved yet. During a gap the object can
// change its distance to the query by at most V_max per time unit (V_max =
// max dataset speed + max query speed), which yields a smallest and a
// largest possible distance integral given the distances pinned at the gap
// boundaries. CandidateList (candidate.h) assembles these pieces into the
// full OPTDISSIM / PESDISSIM values; Lemmas 2 and 3 are their correctness.

#ifndef MST_CORE_BOUNDS_H_
#define MST_CORE_BOUNDS_H_

namespace mst {

/// LDD(D, V, Δt) (Definition 2): the distance integral of an object starting
/// at distance `d0` ≥ 0 whose distance changes linearly at rate `v`
/// (negative = approaching) over a period of length `dt`, with the distance
/// clamped at 0 once the objects meet:
///   Δt (D + V Δt / 2)      if D + V Δt ≥ 0,
///   D² / (2 |V|)           otherwise.
double LDD(double d0, double v, double dt);

/// Most-optimistic integral over an *edge* gap (query-period head or tail)
/// where the candidate's distance is known only at one boundary: the object
/// approaches (or, read in reversed time, approached) the query at V_max.
/// Equals LDD(d_known, −vmax, dt).
double OptimisticEdgeGap(double d_known, double vmax, double dt);

/// Most-pessimistic integral over an edge gap: the object diverges at V_max.
/// Equals LDD(d_known, +vmax, dt).
double PessimisticEdgeGap(double d_known, double vmax, double dt);

/// Most-optimistic integral over an *interior* gap with distances `d0` at
/// the gap start and `d1` at the gap end (Definition 3, last case): approach
/// at V_max until the turning instant t° − t_k = (Δt + (d0 − d1)/V_max)/2,
/// then recede to d1. Both legs clamp at distance 0. (The paper's printed
/// t° formula carries the opposite sign on the distance difference, which
/// contradicts its own Figure 4 geometry; see the derivation in bounds.cc.)
double OptimisticInteriorGap(double d0, double d1, double vmax, double dt);

/// Most-pessimistic integral over an interior gap (Definition 4): diverge at
/// V_max until tᵖ − t_k = (Δt + (d1 − d0)/V_max)/2, then approach to d1.
double PessimisticInteriorGap(double d0, double d1, double vmax, double dt);

}  // namespace mst

#endif  // MST_CORE_BOUNDS_H_
