// The DISSIM spatiotemporal dissimilarity metric (Definition 1) with its two
// evaluation strategies:
//  * exact closed-form integration of sqrt(a t² + b t + c) per elementary
//    interval (the arcsinh antiderivative the paper quotes from Meratnia/By),
//  * the cheap Trapezoid-Rule approximation of Lemma 1 with its error bound.
//
// Because the inter-object distance D(t) is convex on every elementary
// interval (D'' = (4ac − b²) / (4 f^{3/2}) ≥ 0), the trapezoid value always
// *over*-estimates the true integral: the Lemma 1 bound is one-sided and
// DISSIM_true ∈ [value − error_bound, value]. §4.4's error management relies
// on exactly this.

#ifndef MST_CORE_DISSIM_H_
#define MST_CORE_DISSIM_H_

#include "src/geom/interval.h"
#include "src/geom/moving_distance.h"
#include "src/geom/trajectory.h"
#include "src/index/node.h"

namespace mst {

/// How elementary intervals are integrated.
enum class IntegrationPolicy {
  /// Trapezoid rule + Lemma 1 error bound (the paper's default).
  kTrapezoid,
  /// Exact closed form everywhere (no error).
  kExact,
  /// Trapezoid unless the Lemma 1 bound exceeds kAdaptiveRelTol of the
  /// value (or is unbounded, near touching distance), then exact.
  kAdaptive,
};

/// Relative error tolerance triggering exact fallback under kAdaptive.
inline constexpr double kAdaptiveRelTol = 1e-3;

/// An integral of inter-object distance over some period, with the one-sided
/// approximation error: the true value lies in [value − error_bound, value].
struct DissimResult {
  double value = 0.0;
  double error_bound = 0.0;

  /// Smallest value consistent with the error bound (never below 0).
  double LowerBound() const {
    const double lo = value - error_bound;
    return lo > 0.0 ? lo : 0.0;
  }

  void Accumulate(const DissimResult& piece) {
    value += piece.value;
    error_bound += piece.error_bound;
  }
};

/// Exact ∫₀^dur D(τ) dτ for one elementary interval.
double ExactSegmentIntegral(const DistanceTrinomial& tri);

/// Trapezoid approximation with the Lemma 1 bound. The bound is additionally
/// clamped to `value` (the integral is non-negative), which also covers the
/// near-collision case where D'' is unbounded.
DissimResult TrapezoidSegmentIntegral(const DistanceTrinomial& tri);

/// Integrates one elementary interval under `policy`.
DissimResult IntegrateSegment(const DistanceTrinomial& tri,
                              IntegrationPolicy policy);

/// Euclidean distance between the two trajectories at instant `time`; both
/// must be defined there (checked).
double DistanceAt(const Trajectory& q, const Trajectory& t, double time);

/// DISSIM(Q, T) over `period` (Definition 1). Both trajectories must cover
/// the period (checked). Elementary intervals are delimited by the merged
/// sample timestamps of both trajectories.
DissimResult ComputeDissim(const Trajectory& q, const Trajectory& t,
                           const TimeInterval& period,
                           IntegrationPolicy policy = IntegrationPolicy::kTrapezoid);

/// Contribution of one indexed segment: the distance integral between query
/// `q` and the segment's moving point over `window`, plus the distances at
/// the window boundaries (the gap bounds of §3.1 need them).
struct SegmentDissim {
  DissimResult integral;
  double dist_begin = 0.0;
  double dist_end = 0.0;
};

/// Integrates q-vs-entry over `window`, which must satisfy
/// window ⊆ [entry.t0, entry.t1], window ⊆ q's lifespan, and have positive
/// duration (checked). Query sample timestamps interior to the window
/// delimit elementary intervals.
SegmentDissim ComputeSegmentDissim(const Trajectory& q, const LeafEntry& entry,
                                   const TimeInterval& window,
                                   IntegrationPolicy policy);

/// Zero-repack variant: integrates entry `i` of a columnar leaf view over
/// `window`, reading the segment endpoints straight out of the decoded v2
/// page's column slices — no LeafEntry materialization between the node and
/// the batch kernel. Bit-identical to the LeafEntry overload.
SegmentDissim ComputeSegmentDissim(const Trajectory& q, const LeafView& view,
                                   int i, const TimeInterval& window,
                                   IntegrationPolicy policy);

}  // namespace mst

#endif  // MST_CORE_DISSIM_H_
