#include "src/core/mst_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/candidate.h"
#include "src/geom/mindist.h"
#include "src/util/check.h"

namespace mst {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Best-first queue element; min-ordered by (mindist, page) — the page id
// tiebreak makes traversal deterministic.
struct QueueEntry {
  double mindist;
  PageId page;

  bool operator>(const QueueEntry& o) const {
    if (mindist != o.mindist) return mindist > o.mindist;
    return page > o.page;
  }
};

// The "k-buffer": tracks, for every live candidate, an upper bound of its
// true DISSIM (exact-side value for completed candidates, PESDISSIM for
// partial ones) and answers "current kth best upper bound" queries.
class UpperBounds {
 public:
  explicit UpperBounds(int k) : k_(k) {}

  void Update(TrajectoryId id, double upper) {
    const auto it = current_.find(id);
    if (it != current_.end()) {
      ordered_.erase(ordered_.find({it->second, id}));
      it->second = upper;
    } else {
      current_[id] = upper;
    }
    ordered_.insert({upper, id});
  }

  void Remove(TrajectoryId id) {
    const auto it = current_.find(id);
    if (it == current_.end()) return;
    ordered_.erase(ordered_.find({it->second, id}));
    current_.erase(it);
  }

  /// kth smallest upper bound, or +inf while fewer than k candidates exist.
  double KthValue() const {
    if (static_cast<int>(ordered_.size()) < k_) return kInf;
    auto it = ordered_.begin();
    std::advance(it, k_ - 1);
    return it->first;
  }

  size_t size() const { return ordered_.size(); }

 private:
  int k_;
  std::set<std::pair<double, TrajectoryId>> ordered_;
  std::unordered_map<TrajectoryId, double> current_;
};

}  // namespace

BFMstSearch::BFMstSearch(const TrajectoryIndex* index,
                         const TrajectoryStore* store)
    : index_(index), store_(store) {
  MST_CHECK(index != nullptr && store != nullptr);
}

std::vector<MstResult> BFMstSearch::Search(const Trajectory& query,
                                           const TimeInterval& period,
                                           const MstOptions& options,
                                           MstStats* stats_out) const {
  MST_CHECK_MSG(options.k >= 1, "k must be at least 1");
  MST_CHECK_MSG(period.Duration() > 0.0, "query period must have duration");
  MST_CHECK_MSG(query.Covers(period),
                "query trajectory must cover the query period");

  MstStats stats;
  stats.total_nodes = index_->NodeCount();
  // Thread-local before/after deltas rather than resetting the index's
  // shared counters: concurrent queries on one index each get exact
  // per-query stats.
  const int64_t accesses_before = TrajectoryIndex::ThreadNodeAccesses();
  const int64_t cache_hits_before = NodeCache::ThreadHits();
  const int64_t cache_misses_before = NodeCache::ThreadMisses();

  std::vector<MstResult> results;
  if (index_->empty()) {
    if (stats_out != nullptr) *stats_out = stats;
    return results;
  }

  const double vmax = options.vmax_override >= 0.0
                          ? options.vmax_override
                          : index_->max_speed() + query.MaxSpeed();

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({0.0, index_->root()});
  ++stats.heap_pushes;

  std::unordered_map<TrajectoryId, CandidateList> valid;
  std::unordered_map<TrajectoryId, CandidateList> completed;
  std::unordered_set<TrajectoryId> rejected;
  UpperBounds uppers(options.k);
  // Scratch for the per-leaf temporal sort: cached nodes are immutable and
  // shared, so the sort works on a reused copy instead of the node itself.
  std::vector<LeafEntry> sorted_leaves;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();

    // Heuristic 2: MINDISSIMINC termination. The quick first test
    // (MINDIST · period length) avoids scanning the Valid set on most pops,
    // exactly as the paper describes at the end of §4.
    if (options.use_heuristic2) {
      const double kth = uppers.KthValue();
      if (kth < kInf) {
        double mindissiminc = top.mindist * period.Duration();
        if (mindissiminc > kth) {
          for (const auto& [id, list] : valid) {
            mindissiminc = std::min(mindissiminc,
                                    list.OptDissimInc(top.mindist));
            if (mindissiminc <= kth) break;
          }
          if (mindissiminc > kth) {
            stats.terminated_by_heuristic2 = true;
            break;
          }
        }
      }
    }

    const NodeRef node = index_->ReadNode(top.page);

    if (!node->IsLeaf()) {
      for (const InternalEntry& e : node->internals) {
        const double d = MinDist(query, e.mbb, period);
        if (std::isinf(d)) continue;  // no temporal overlap with the period
        queue.push({d, e.child});
        ++stats.heap_pushes;
      }
      continue;
    }

    // Leaf: process entries in temporal order (the paper's line 10). TB-tree
    // leaves are already sorted — iterate the shared cached node directly;
    // only the 3D R-tree's leaves need the copy + sort into the scratch.
    const auto temporal_order = [](const LeafEntry& a, const LeafEntry& b) {
      if (a.t0 != b.t0) return a.t0 < b.t0;
      return a.traj_id < b.traj_id;
    };
    const std::vector<LeafEntry>* entries = &node->leaves;
    if (!std::is_sorted(entries->begin(), entries->end(), temporal_order)) {
      sorted_leaves.assign(entries->begin(), entries->end());
      std::sort(sorted_leaves.begin(), sorted_leaves.end(), temporal_order);
      entries = &sorted_leaves;
    }
    for (const LeafEntry& e : *entries) {
      ++stats.leaf_entries_seen;
      const TrajectoryId id = e.traj_id;
      if (id == options.exclude_id) continue;
      if (rejected.contains(id) || completed.contains(id)) continue;
      const TimeInterval window = period.Intersect(e.TimeSpan());
      if (window.Duration() <= 0.0) continue;

      auto it = valid.find(id);
      if (it == valid.end()) {
        const Trajectory* t = store_->Find(id);
        if (t == nullptr || !t->Covers(period)) {
          rejected.insert(id);
          ++stats.candidates_ineligible;
          continue;
        }
        it = valid.emplace(id, CandidateList(id, period)).first;
        ++stats.candidates_created;
      }
      CandidateList& list = it->second;

      const SegmentDissim seg =
          ComputeSegmentDissim(query, e, window, options.policy);
      list.AddPiece(window, seg.integral, seg.dist_begin, seg.dist_end);

      if (list.IsComplete()) {
        uppers.Update(id, list.covered().value);
        completed.emplace(id, std::move(list));
        valid.erase(it);
        ++stats.candidates_completed;
        continue;
      }
      uppers.Update(id, list.PesDissim(vmax));
      if (options.use_heuristic1) {
        const double kth = uppers.KthValue();
        if (list.OptDissim(vmax) > kth) {
          uppers.Remove(id);
          rejected.insert(id);
          valid.erase(it);
          ++stats.candidates_rejected;
          continue;
        }
      }
      // Eager completion (extension): a contender on an index with a direct
      // trajectory access path gets its remaining segments through the
      // chain right away.
      if (options.use_eager_completion && index_->SupportsTrajectoryFetch()) {
        const double kth = uppers.KthValue();
        if (static_cast<int>(uppers.size()) <= options.k ||
            list.OptDissim(vmax) <= kth) {
          for (const LeafEntry& seg : index_->FetchTrajectorySegments(id)) {
            const TimeInterval w = period.Intersect(seg.TimeSpan());
            if (w.Duration() <= 0.0 || list.CoversInterval(w)) continue;
            const SegmentDissim sd =
                ComputeSegmentDissim(query, seg, w, options.policy);
            list.AddPiece(w, sd.integral, sd.dist_begin, sd.dist_end);
            ++stats.leaf_entries_seen;
          }
          if (list.IsComplete()) {
            uppers.Update(id, list.covered().value);
            completed.emplace(id, std::move(list));
            valid.erase(it);
            ++stats.candidates_completed;
            ++stats.eager_completions;
          }
        }
      }
    }
  }

  // Final ranking with error management (§4.4): keep every candidate whose
  // lower bound does not exceed the kth smallest upper bound; resolve the
  // survivors' exact order by recomputation when requested.
  struct Survivor {
    TrajectoryId id;
    double lower;
    double upper;
    bool complete;
  };
  std::vector<Survivor> pool;
  pool.reserve(completed.size() + valid.size());
  for (const auto& [id, list] : completed) {
    pool.push_back({id, list.covered().LowerBound(), list.covered().value,
                    true});
  }
  for (const auto& [id, list] : valid) {
    pool.push_back({id, list.OptDissim(vmax), list.PesDissim(vmax), false});
  }
  if (pool.empty()) {
    if (stats_out != nullptr) *stats_out = stats;
    return results;
  }

  double kth_upper = kInf;
  if (pool.size() >= static_cast<size_t>(options.k)) {
    std::vector<double> ups;
    ups.reserve(pool.size());
    for (const Survivor& s : pool) ups.push_back(s.upper);
    std::nth_element(ups.begin(), ups.begin() + (options.k - 1), ups.end());
    kth_upper = ups[static_cast<size_t>(options.k - 1)];
  }

  for (const Survivor& s : pool) {
    if (s.lower > kth_upper) continue;
    MstResult r;
    r.id = s.id;
    if (options.exact_postprocess) {
      r.dissim =
          ComputeDissim(query, store_->Get(s.id), period,
                        IntegrationPolicy::kExact)
              .value;
      r.error_bound = 0.0;
      ++stats.exact_recomputations;
    } else if (s.complete) {
      const CandidateList& list = completed.at(s.id);
      r.dissim = list.covered().value;
      r.error_bound = list.covered().error_bound;
    } else {
      // Complete the partial candidate from the trajectory table with the
      // search policy.
      const DissimResult d =
          ComputeDissim(query, store_->Get(s.id), period, options.policy);
      r.dissim = d.value;
      r.error_bound = d.error_bound;
    }
    results.push_back(r);
  }

  std::sort(results.begin(), results.end(),
            [](const MstResult& a, const MstResult& b) {
              if (a.dissim != b.dissim) return a.dissim < b.dissim;
              return a.id < b.id;
            });
  if (results.size() > static_cast<size_t>(options.k)) {
    results.resize(static_cast<size_t>(options.k));
  }

  stats.nodes_accessed =
      TrajectoryIndex::ThreadNodeAccesses() - accesses_before;
  stats.node_cache_hits = NodeCache::ThreadHits() - cache_hits_before;
  stats.node_cache_misses = NodeCache::ThreadMisses() - cache_misses_before;
  if (stats_out != nullptr) *stats_out = stats;
  return results;
}

}  // namespace mst
