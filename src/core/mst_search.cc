#include "src/core/mst_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/candidate.h"
#include "src/geom/mindist.h"
#include "src/util/check.h"

namespace mst {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Best-first queue element; min-ordered by (mindist, tree, page) — the
// tree/page tiebreak makes forest traversal deterministic (page ids of the
// main and delta trees live in separate pagefiles, so they collide freely).
struct QueueEntry {
  double mindist;
  PageId page;
  // Which tree `page` belongs to: 0 = main index, 1 = delta. Ties on
  // mindist visit the main tree first.
  uint8_t tree;
  // Whether `page` is a leaf (known from the parent's level when pushed).
  // Leaf pops take the column-streaming read path; not part of the order.
  bool leaf;

  bool operator>(const QueueEntry& o) const {
    if (mindist != o.mindist) return mindist > o.mindist;
    if (tree != o.tree) return tree > o.tree;
    return page > o.page;
  }
};

// The "k-buffer": tracks, for every live candidate, an upper bound of its
// true DISSIM (exact-side value for completed candidates, PESDISSIM for
// partial ones) and answers "current kth best upper bound" queries.
//
// KthValue() is consulted for every processed leaf entry (Heuristic 1, the
// batched leaf prune) and on every heap pop (Heuristic 2), so the bounds
// are kept split into the k smallest (`topk_`) and the rest, with
// max(topk_) <= min(rest_): the kth value is then the largest element of
// topk_, read in O(1) instead of advancing k set nodes per call.
class UpperBounds {
 public:
  explicit UpperBounds(int k) : k_(k) {}

  void Update(TrajectoryId id, double upper) {
    const auto it = current_.find(id);
    if (it != current_.end()) {
      EraseOrdered({it->second, id});
      it->second = upper;
    } else {
      current_[id] = upper;
    }
    InsertOrdered({upper, id});
  }

  void Remove(TrajectoryId id) {
    const auto it = current_.find(id);
    if (it == current_.end()) return;
    EraseOrdered({it->second, id});
    current_.erase(it);
  }

  /// kth smallest upper bound, or +inf while fewer than k candidates exist.
  double KthValue() const {
    if (static_cast<int>(topk_.size()) < k_) return kInf;
    return topk_.rbegin()->first;
  }

  size_t size() const { return current_.size(); }

 private:
  using Key = std::pair<double, TrajectoryId>;

  void InsertOrdered(const Key& key) {
    if (static_cast<int>(topk_.size()) < k_) {
      topk_.insert(key);
      return;
    }
    const auto last = std::prev(topk_.end());
    if (key < *last) {
      rest_.insert(*last);
      topk_.erase(last);
      topk_.insert(key);
    } else {
      rest_.insert(key);
    }
  }

  void EraseOrdered(const Key& key) {
    const auto it = topk_.find(key);
    if (it != topk_.end()) {
      topk_.erase(it);
      if (!rest_.empty()) {
        topk_.insert(*rest_.begin());
        rest_.erase(rest_.begin());
      }
    } else {
      rest_.erase(rest_.find(key));
    }
  }

  int k_;
  std::set<Key> topk_;  // the k smallest bounds (all of them while < k)
  std::set<Key> rest_;  // everything above, max(topk_) <= min(rest_)
  std::unordered_map<TrajectoryId, double> current_;
};

// Spatial rectangle of the query's positions over `period` (the query is
// piecewise linear, so boundary positions plus interior samples span it).
struct Rect2 {
  double xlo = kInf;
  double ylo = kInf;
  double xhi = -kInf;
  double yhi = -kInf;
};

Rect2 QueryFootprint(const Trajectory& q, const TimeInterval& period) {
  Rect2 r;
  const auto add = [&r](const Vec2& p) {
    r.xlo = std::min(r.xlo, p.x);
    r.ylo = std::min(r.ylo, p.y);
    r.xhi = std::max(r.xhi, p.x);
    r.yhi = std::max(r.yhi, p.y);
  };
  add(*q.PositionAt(period.begin));
  add(*q.PositionAt(period.end));
  for (const TPoint& s : q.samples()) {
    if (s.t > period.begin && s.t < period.end) add(s.p);
  }
  return r;
}

// Per-leaf batched scratch: query windows and DISSIM lower bounds for every
// entry of one leaf, filled in a single pass over the columnar view.
struct LeafBatchScratch {
  std::vector<double> wbegin;
  std::vector<double> wend;
  std::vector<double> dur;
  std::vector<double> lower;
  std::vector<int> order;  // temporal argsort when the leaf is unsorted
};

// One vectorizable sweep over the leaf's columns: clip each segment's
// lifespan against the query period and lower-bound its DISSIM contribution
// by (spatial gap between the segment's bounding rect and the query's
// period footprint) × (window duration). The gap under-estimates the
// pointwise inter-object distance throughout the window, so `lower` is a
// true lower bound of the candidate's full-period DISSIM — exactly the
// one-sided test Heuristic 1 needs, evaluated per entry without touching
// the trajectory store.
//
// `lower` holds the SQUARE of the bound: both sides of Heuristic 1's
// comparison are non-negative, so comparing squares gives bit-identical
// decisions while the sweep drops its per-entry sqrt (the bound's only
// other consumer, the > 0 test, is square-invariant too).
void ComputeLeafBatch(const LeafView& v, const TimeInterval& period,
                      const Rect2& qbox, LeafBatchScratch* s) {
  const size_t n = static_cast<size_t>(v.count);
  s->wbegin.resize(n);
  s->wend.resize(n);
  s->dur.resize(n);
  s->lower.resize(n);
  const double* t0 = v.t0;
  const double* t1 = v.t1;
  const double* x0 = v.x0;
  const double* x1 = v.x1;
  const double* y0 = v.y0;
  const double* y1 = v.y1;
  for (size_t i = 0; i < n; ++i) {
    const double wb = t0[i] > period.begin ? t0[i] : period.begin;
    const double we = t1[i] < period.end ? t1[i] : period.end;
    const double d = we - wb;
    s->wbegin[i] = wb;
    s->wend[i] = we;
    s->dur[i] = d;
    const double sxlo = x0[i] < x1[i] ? x0[i] : x1[i];
    const double sxhi = x0[i] < x1[i] ? x1[i] : x0[i];
    const double sylo = y0[i] < y1[i] ? y0[i] : y1[i];
    const double syhi = y0[i] < y1[i] ? y1[i] : y0[i];
    double dx = qbox.xlo - sxhi;
    const double dx2 = sxlo - qbox.xhi;
    dx = dx > dx2 ? dx : dx2;
    dx = dx > 0.0 ? dx : 0.0;
    double dy = qbox.ylo - syhi;
    const double dy2 = sylo - qbox.yhi;
    dy = dy > dy2 ? dy : dy2;
    dy = dy > 0.0 ? dy : 0.0;
    const double gap2 = dx * dx + dy * dy;
    s->lower[i] = d > 0.0 ? gap2 * (d * d) : 0.0;
  }
}

}  // namespace

BFMstSearch::BFMstSearch(const TrajectoryIndex* index,
                         const TrajectorySource* store,
                         ResultCache* result_cache,
                         const TrajectoryIndex* delta)
    : index_(index), store_(store), result_cache_(result_cache),
      delta_(delta) {
  MST_CHECK(index != nullptr && store != nullptr);
}

std::vector<MstResult> BFMstSearch::Search(const Trajectory& query,
                                           const TimeInterval& period,
                                           const MstOptions& options,
                                           MstStats* stats_out) const {
  MST_CHECK_MSG(options.k >= 1, "k must be at least 1");
  MST_CHECK_MSG(period.Duration() > 0.0, "query period must have duration");
  MST_CHECK_MSG(query.Covers(period),
                "query trajectory must cover the query period");

  // An empty delta is the same as no delta (saves a root push per query
  // between merges with a drained delta).
  const TrajectoryIndex* const delta =
      (delta_ != nullptr && !delta_->empty()) ? delta_ : nullptr;

  MstStats stats;
  stats.total_nodes =
      index_->NodeCount() + (delta != nullptr ? delta->NodeCount() : 0);
  // Thread-local before/after deltas rather than resetting the index's
  // shared counters: concurrent queries on one index each get exact
  // per-query stats.
  const int64_t accesses_before = TrajectoryIndex::ThreadNodeAccesses();
  const int64_t cache_hits_before = NodeCache::ThreadHits();
  const int64_t cache_misses_before = NodeCache::ThreadMisses();
  const int64_t rc_hits_before = ResultCache::ThreadHits();
  const int64_t rc_misses_before = ResultCache::ThreadMisses();

  // Externally seeded kth upper bound (see MstOptions). Every Heuristic 1/2
  // comparison reads min(own kth bound, seed); with a sound seed the prune
  // decisions only ever get strictly safer, so results are unchanged while
  // node accesses drop. The seed is inflated by a hair of relative slack
  // first: candidate bounds here are sums of per-piece integrals while a
  // seed comes from full-period recomputation — the same integrals
  // associated differently — so without the slack an ulp-level rounding
  // difference can push a true top-k candidate's piece-sum bound past an
  // exactly-equal seed and silently drop it. 1e-9 is ~1e4x the worst
  // association error observed and far below any real pruning margin.
  constexpr double kSeedAssociationSlack = 1e-9;
  const double seed_bound =
      options.initial_kth_upper_bound * (1.0 + kSeedAssociationSlack);

  std::vector<MstResult> results;
  if (index_->empty() && delta == nullptr) {
    if (stats_out != nullptr) *stats_out = stats;
    return results;
  }

  // V_max spans both trees: a delta-resident trajectory's speed caps the
  // same OPTDISSIM bounds as a main-resident one.
  const double vmax =
      options.vmax_override >= 0.0
          ? options.vmax_override
          : std::max(index_->max_speed(),
                     delta != nullptr ? delta->max_speed() : 0.0) +
                query.MaxSpeed();

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  if (!index_->empty()) {
    queue.push({0.0, index_->root(), 0, index_->height() == 1});
    ++stats.heap_pushes;
  }
  if (delta != nullptr) {
    queue.push({0.0, delta->root(), 1, delta->height() == 1});
    ++stats.heap_pushes;
  }

  std::unordered_map<TrajectoryId, CandidateList> valid;
  std::unordered_map<TrajectoryId, CandidateList> completed;
  std::unordered_set<TrajectoryId> rejected;
  UpperBounds uppers(options.k);
  // Reused per-leaf scratch for the batched window/lower-bound pass; the
  // query's spatial footprint over the period is its fixed input.
  LeafBatchScratch batch;
  const Rect2 query_box = QueryFootprint(query, period);
  // Sticky skip cache: exclusion, rejection and completion are monotone over
  // one search (ids only ever enter those states), so once an id skips it
  // skips for good. TB-tree leaves bundle consecutive segments of a single
  // trajectory, so remembering the last skipped id collapses a whole leaf's
  // hash-set probes into one comparison.
  TrajectoryId skip_id = kInvalidTrajectoryId;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();

    // Heuristic 2: MINDISSIMINC termination. The quick first test
    // (MINDIST · period length) avoids scanning the Valid set on most pops,
    // exactly as the paper describes at the end of §4.
    if (options.use_heuristic2) {
      const double kth = std::min(uppers.KthValue(), seed_bound);
      if (kth < kInf) {
        double mindissiminc = top.mindist * period.Duration();
        if (mindissiminc > kth) {
          for (const auto& [id, list] : valid) {
            mindissiminc = std::min(mindissiminc,
                                    list.OptDissimInc(top.mindist));
            if (mindissiminc <= kth) break;
          }
          if (mindissiminc > kth) {
            stats.terminated_by_heuristic2 = true;
            break;
          }
        }
      }
    }

    // All page reads of this pop go to the tree the entry was pushed from.
    const TrajectoryIndex* const tree = top.tree == 0 ? index_ : delta;

    if (!top.leaf) {
      const NodeRef node = tree->ReadNode(top.page);
      for (const InternalEntry& e : node->internals) {
        const double d = MinDist(query, e.mbb, period);
        if (std::isinf(d)) continue;  // no temporal overlap with the period
        queue.push({d, e.child, top.tree, node->level == 1});
        ++stats.heap_pushes;
      }
      continue;
    }

    // Leaf: stream the columns straight from the page (zero-copy for v2
    // pages with the node cache off — see ReadLeafColumns). One
    // vectorizable pass over the columnar view computes every entry's query
    // window and its DISSIM lower bound (batched leaf-level pruning), then
    // entries are processed in temporal order (the paper's line 10).
    // TB-tree leaves carry the time-sorted header flag — iterate the
    // columns directly; only the 3D R-tree's unsorted leaves argsort an
    // index permutation (no entry copies either way).
    const TrajectoryIndex::LeafPageRead leaf =
        tree->ReadLeafColumns(top.page);
    const LeafView& view = leaf.view;
    ComputeLeafBatch(view, period, query_box, &batch);
    const int* order = nullptr;
    if (!view.time_sorted) {
      batch.order.resize(static_cast<size_t>(view.count));
      for (int i = 0; i < view.count; ++i) batch.order[i] = i;
      std::sort(batch.order.begin(), batch.order.end(),
                [&view](int a, int b) {
                  if (view.t0[a] != view.t0[b]) return view.t0[a] < view.t0[b];
                  if (view.traj_id[a] != view.traj_id[b]) {
                    return view.traj_id[a] < view.traj_id[b];
                  }
                  return a < b;
                });
      order = batch.order.data();
    }
    for (int pos = 0; pos < view.count; ++pos) {
      const int j = order != nullptr ? order[pos] : pos;
      ++stats.leaf_entries_seen;
      const TrajectoryId id = view.traj_id[j];
      if (id == skip_id) continue;
      if (id == options.exclude_id) {
        skip_id = id;
        continue;
      }
      if (rejected.contains(id) || completed.contains(id)) {
        skip_id = id;
        continue;
      }
      if (batch.dur[static_cast<size_t>(j)] <= 0.0) continue;
      const TimeInterval window{batch.wbegin[static_cast<size_t>(j)],
                                batch.wend[static_cast<size_t>(j)]};

      auto it = valid.find(id);
      if (it == valid.end()) {
        // Batched leaf-level prune (Heuristic 1's test with the precomputed
        // per-entry lower bound): a would-be-new candidate whose bound
        // already exceeds the current kth upper bound can never enter the
        // top k — reject it before paying the store lookup and the
        // refinement integral. Existing candidates keep accumulating pieces
        // so their OPTDISSIM/PESDISSIM bookkeeping is unchanged. Both sides
        // are squared (see ComputeLeafBatch).
        const double kth_new = std::min(uppers.KthValue(), seed_bound);
        if (options.use_heuristic1 &&
            batch.lower[static_cast<size_t>(j)] > 0.0 &&
            batch.lower[static_cast<size_t>(j)] > kth_new * kth_new) {
          rejected.insert(id);
          skip_id = id;
          ++stats.leaf_entries_pruned;
          continue;
        }
        const Trajectory* t = store_->Find(id);
        if (t == nullptr || !t->Covers(period)) {
          rejected.insert(id);
          skip_id = id;
          ++stats.candidates_ineligible;
          continue;
        }
        it = valid.emplace(id, CandidateList(id, period)).first;
        ++stats.candidates_created;
      }
      CandidateList& list = it->second;

      const SegmentDissim seg =
          ComputeSegmentDissim(query, view, j, window, options.policy);
      list.AddPiece(window, seg.integral, seg.dist_begin, seg.dist_end);

      if (list.IsComplete()) {
        uppers.Update(id, list.covered().value);
        completed.emplace(id, std::move(list));
        valid.erase(it);
        skip_id = id;
        ++stats.candidates_completed;
        continue;
      }
      uppers.Update(id, list.PesDissim(vmax));
      if (options.use_heuristic1) {
        const double kth = std::min(uppers.KthValue(), seed_bound);
        if (list.OptDissim(vmax) > kth) {
          uppers.Remove(id);
          rejected.insert(id);
          valid.erase(it);
          skip_id = id;
          ++stats.candidates_rejected;
          continue;
        }
      }
      // Eager completion (extension): a contender on an index with a direct
      // trajectory access path gets its remaining segments through the
      // chain right away. The chain is walked page by page through the
      // columnar LeafView (zero repack) — pages are read in the same order
      // FetchTrajectorySegments would read them, so the logical and
      // physical I/O accounting is unchanged, but no entry vector is ever
      // materialized and out-of-period segments cost two column loads.
      // In forest mode the chain covers only this tree's segments of the
      // trajectory; coverage-based completion stays correct (the candidate
      // completes only once pieces from both trees close the period).
      if (options.use_eager_completion && tree->SupportsTrajectoryFetch()) {
        const double kth = std::min(uppers.KthValue(), seed_bound);
        if (static_cast<int>(uppers.size()) <= options.k ||
            list.OptDissim(vmax) <= kth) {
          PageId chain = tree->TrajectoryChainHead(id);
          if (chain == kInvalidPageId) {
            // Direct-path index without a chain-head hook: fall back to the
            // materializing fetch.
            for (const LeafEntry& seg : tree->FetchTrajectorySegments(id)) {
              const TimeInterval w = period.Intersect(seg.TimeSpan());
              if (w.Duration() <= 0.0 || list.CoversInterval(w)) continue;
              const SegmentDissim sd =
                  ComputeSegmentDissim(query, seg, w, options.policy);
              list.AddPiece(w, sd.integral, sd.dist_begin, sd.dist_end);
              ++stats.leaf_entries_seen;
            }
          }
          while (chain != kInvalidPageId) {
            const TrajectoryIndex::LeafPageRead link =
                tree->ReadLeafColumns(chain);
            chain = link.next_leaf;
            const LeafView& cv = link.view;
            // A page whose time range misses the period contributes no
            // pieces; one header test skips its entries (the page read
            // above still counts, so I/O accounting is unchanged).
            if (cv.bounds.thi <= period.begin || cv.bounds.tlo >= period.end) {
              continue;
            }
            for (int ci = 0; ci < cv.count; ++ci) {
              const TimeInterval w =
                  period.Intersect({cv.t0[ci], cv.t1[ci]});
              if (w.Duration() <= 0.0 || list.CoversInterval(w)) continue;
              const SegmentDissim sd =
                  ComputeSegmentDissim(query, cv, ci, w, options.policy);
              list.AddPiece(w, sd.integral, sd.dist_begin, sd.dist_end);
              ++stats.leaf_entries_seen;
            }
          }
          if (list.IsComplete()) {
            uppers.Update(id, list.covered().value);
            completed.emplace(id, std::move(list));
            valid.erase(it);
            skip_id = id;
            ++stats.candidates_completed;
            ++stats.eager_completions;
          }
        }
      }
    }
  }

  // Final ranking with error management (§4.4): keep every candidate whose
  // lower bound does not exceed the kth smallest upper bound; resolve the
  // survivors' exact order by recomputation when requested.
  struct Survivor {
    TrajectoryId id;
    double lower;
    double upper;
    bool complete;
  };
  std::vector<Survivor> pool;
  pool.reserve(completed.size() + valid.size());
  for (const auto& [id, list] : completed) {
    pool.push_back({id, list.covered().LowerBound(), list.covered().value,
                    true});
  }
  for (const auto& [id, list] : valid) {
    pool.push_back({id, list.OptDissim(vmax), list.PesDissim(vmax), false});
  }
  if (pool.empty()) {
    if (stats_out != nullptr) *stats_out = stats;
    return results;
  }

  double kth_upper = kInf;
  if (pool.size() >= static_cast<size_t>(options.k)) {
    std::vector<double> ups;
    ups.reserve(pool.size());
    for (const Survivor& s : pool) ups.push_back(s.upper);
    std::nth_element(ups.begin(), ups.begin() + (options.k - 1), ups.end());
    kth_upper = ups[static_cast<size_t>(options.k - 1)];
  }
  // The survivor filter below is strict (>), so a seed equal to the true kth
  // dissimilarity keeps every tie — same guarantee as the heuristics above.
  kth_upper = std::min(kth_upper, seed_bound);

  // Full-period refinement, memoized through the cross-query result cache
  // when one is attached and enabled. The fingerprint is computed lazily —
  // once, and only if a refinement actually happens.
  ResultCache* const rcache =
      (result_cache_ != nullptr && result_cache_->enabled()) ? result_cache_
                                                             : nullptr;
  // Cost estimate fed to the cache's admission policy: the sample count the
  // integrator walks — the query's samples inside the period plus the
  // candidate's. Proportional to refinement time for every policy.
  const auto samples_in_period = [&period](const Trajectory& t) -> double {
    const auto& s = t.samples();
    const auto lo = std::lower_bound(
        s.begin(), s.end(), period.begin,
        [](const TPoint& p, double v) { return p.t < v; });
    const auto hi = std::upper_bound(
        lo, s.end(), period.end,
        [](double v, const TPoint& p) { return v < p.t; });
    return static_cast<double>(hi - lo);
  };
  QueryFingerprint fp;
  bool fp_ready = false;
  double query_cost = 0.0;
  const auto refined_dissim = [&](TrajectoryId id,
                                  IntegrationPolicy policy) -> DissimResult {
    if (rcache == nullptr) {
      return ComputeDissim(query, store_->Get(id), period, policy);
    }
    if (!fp_ready) {
      fp = FingerprintQuery(query);
      query_cost = samples_in_period(query);
      fp_ready = true;
    }
    // Read the trajectory's write version BEFORE looking up / computing
    // (observe-then-publish, as in NodeCache): a concurrent insert for `id`
    // bumps the version, so the value published below under the old version
    // can never be served after the write. A version-owning source (live
    // ingest snapshot) is the authority; otherwise the index is — never the
    // delta tree, whose instances are rebuilt (and their version counters
    // reset) on every append.
    const uint64_t version = store_->OwnsWriteVersions()
                                 ? store_->SourceWriteVersion(id)
                                 : index_->TrajectoryWriteVersion(id);
    const ResultCacheKey key{fp, id, period, policy};
    DissimResult d;
    if (rcache->Lookup(key, version, &d)) return d;
    const Trajectory& candidate = store_->Get(id);
    d = ComputeDissim(query, candidate, period, policy);
    rcache->Insert(key, d, version, query_cost + samples_in_period(candidate));
    return d;
  };

  for (const Survivor& s : pool) {
    if (s.lower > kth_upper) continue;
    MstResult r;
    r.id = s.id;
    if (options.exact_postprocess) {
      r.dissim = refined_dissim(s.id, IntegrationPolicy::kExact).value;
      r.error_bound = 0.0;
      // Counted whether the integral ran or a cache hit skipped it: this is
      // the logical refinement count, byte-identical cache on or off (the
      // physical split is result_cache_hits/misses).
      ++stats.exact_recomputations;
    } else if (s.complete) {
      const CandidateList& list = completed.at(s.id);
      r.dissim = list.covered().value;
      r.error_bound = list.covered().error_bound;
    } else {
      // Complete the partial candidate from the trajectory table with the
      // search policy.
      const DissimResult d = refined_dissim(s.id, options.policy);
      r.dissim = d.value;
      r.error_bound = d.error_bound;
    }
    results.push_back(r);
  }

  std::sort(results.begin(), results.end(),
            [](const MstResult& a, const MstResult& b) {
              if (a.dissim != b.dissim) return a.dissim < b.dissim;
              return a.id < b.id;
            });
  if (results.size() > static_cast<size_t>(options.k)) {
    results.resize(static_cast<size_t>(options.k));
  }

  stats.nodes_accessed =
      TrajectoryIndex::ThreadNodeAccesses() - accesses_before;
  stats.node_cache_hits = NodeCache::ThreadHits() - cache_hits_before;
  stats.node_cache_misses = NodeCache::ThreadMisses() - cache_misses_before;
  stats.result_cache_hits = ResultCache::ThreadHits() - rc_hits_before;
  stats.result_cache_misses = ResultCache::ThreadMisses() - rc_misses_before;
  if (stats_out != nullptr) *stats_out = stats;
  return results;
}

}  // namespace mst
