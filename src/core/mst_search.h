// BFMSTSearch (§4): best-first k-Most-Similar-Trajectory search over any
// R-tree-family trajectory index, using MINDIST node ordering (Hjaltason–
// Samet), the speed-dependent OPTDISSIM/PESDISSIM candidate bounds
// (Heuristic 1) and the speed-independent MINDISSIMINC termination test
// (Heuristic 2), with the §4.4 error management for the trapezoid
// approximation and an exact post-processing step.

#ifndef MST_CORE_MST_SEARCH_H_
#define MST_CORE_MST_SEARCH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/dissim.h"
#include "src/core/result_cache.h"
#include "src/geom/interval.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"

namespace mst {

/// One answer of a k-MST query.
struct MstResult {
  TrajectoryId id = kInvalidTrajectoryId;
  /// DISSIM(Q, T) over the query period. Exact when error_bound == 0.
  double dissim = 0.0;
  /// One-sided bound: the true DISSIM lies in [dissim − error_bound, dissim].
  double error_bound = 0.0;
};

/// Per-query instrumentation.
struct MstStats {
  int64_t nodes_accessed = 0;
  int64_t total_nodes = 0;
  int64_t leaf_entries_seen = 0;
  int64_t heap_pushes = 0;
  int64_t candidates_created = 0;
  int64_t candidates_completed = 0;
  int64_t candidates_rejected = 0;   // by Heuristic 1
  int64_t leaf_entries_pruned = 0;   // by the batched leaf lower-bound pass
  int64_t candidates_ineligible = 0; // lifespan does not cover the period
  int64_t eager_completions = 0;     // candidates completed via chain fetch
  int64_t exact_recomputations = 0;  // post-processing integrals
  /// Decoded-node cache traffic of this query (hits + misses ==
  /// nodes_accessed while the cache is enabled; both 0 when disabled).
  int64_t node_cache_hits = 0;
  int64_t node_cache_misses = 0;
  /// Cross-query result-cache traffic of this query (hits + misses ==
  /// full-period refinements consulted while a cache is attached and
  /// enabled; both 0 otherwise). A hit skipped one trapezoid/exact
  /// integration entirely; `exact_recomputations` still counts the logical
  /// refinement either way, so it stays byte-identical cache on or off.
  int64_t result_cache_hits = 0;
  int64_t result_cache_misses = 0;
  bool terminated_by_heuristic2 = false;

  /// Fraction of index nodes the query never touched ("pruned space").
  double PruningPower() const {
    if (total_nodes <= 0) return 0.0;
    return 1.0 - static_cast<double>(nodes_accessed) /
                     static_cast<double>(total_nodes);
  }
};

/// Query knobs. Defaults reproduce the paper's configuration.
struct MstOptions {
  /// Number of most-similar trajectories to return.
  int k = 1;
  /// Integration of covered pieces during the search.
  IntegrationPolicy policy = IntegrationPolicy::kTrapezoid;
  /// Heuristic 1: reject candidates whose OPTDISSIM exceeds the current kth
  /// best upper bound.
  bool use_heuristic1 = true;
  /// Heuristic 2: terminate when the popped node's MINDISSIMINC exceeds the
  /// current kth best upper bound.
  bool use_heuristic2 = true;
  /// Recompute the surviving candidates with the exact closed form so the
  /// returned dissimilarities (and their order) are exact (§4.4's
  /// post-processing). With false, incomplete winners are completed with
  /// `policy` and results carry their error bounds.
  bool exact_postprocess = true;
  /// V_max for the speed-dependent bounds. Negative (default) means
  /// index.max_speed() + query.MaxSpeed(), as defined in Table 1.
  double vmax_override = -1.0;
  /// Eager completion (this repository's extension; off by default, which
  /// is the paper-faithful behaviour): when the index offers a direct
  /// per-trajectory access path (the TB-tree's leaf chains) and a candidate
  /// looks like a contender (OPTDISSIM at or below the current kth upper
  /// bound, or the buffer is not full yet), fetch its remaining segments
  /// through the chain and complete it immediately. This tightens the kth
  /// bound early and buys earlier Heuristic 2 termination, at the price of
  /// chain page reads. No effect on result correctness or on indexes
  /// without a fetch path.
  bool use_eager_completion = false;
  /// Trajectory id to skip (useful when the query is itself stored in the
  /// index); kInvalidTrajectoryId skips nothing.
  TrajectoryId exclude_id = kInvalidTrajectoryId;
  /// Externally supplied upper bound on the kth-best DISSIM, used to seed
  /// the prune bound that Heuristics 1 and 2 compare against (the search
  /// starts from min(this, its own kth bound) instead of +inf). The batch
  /// executor seeds it from an already-completed sibling query with the
  /// same geometry, period, k reach, and exclude id (see
  /// QueryExecutor::Options::share_batch_bounds).
  ///
  /// Soundness contract: the value MUST be a true upper bound of the kth
  /// smallest exact DISSIM of this query — then, with exact_postprocess on
  /// AND an exact traversal policy (policy == kExact, so every candidate
  /// bound is itself a lower bound of the exact value), the returned
  /// results are byte-identical to the unseeded search (every true top-k
  /// candidate survives all pruning: its OPTDISSIM never exceeds the
  /// bound), only cheaper (node accesses drop). The search inflates the
  /// seed internally by a relative slack before use, absorbing the
  /// ulp-level difference between piece-sum bounds and a full-period
  /// recomputation of the same integrals. A wrong (too small) bound
  /// silently loses answers; under an approximate traversal policy the
  /// trapezoid piece sums are not lower bounds of the exact values, so a
  /// seed can change results. Default +inf = no seed.
  double initial_kth_upper_bound = std::numeric_limits<double>::infinity();
};

/// k-MST search engine bound to one index + the trajectory table backing it.
/// The store provides lifespans for eligibility checks and the segments
/// needed by exact post-processing; the traversal itself reads only the
/// index, as in the paper.
class BFMstSearch {
 public:
  /// None of the pointers is owned; index and store must outlive the
  /// searcher. `result_cache` (optional) memoizes the full-period DISSIM
  /// refinements of §4.4 post-processing across queries: a hit skips the
  /// whole integration for that candidate while leaving the traversal — and
  /// with it every result and node-access metric — byte-identical to the
  /// uncached search. The cache may be shared by concurrent searchers.
  ///
  /// `delta` (optional) is a second index searched as a two-tree forest with
  /// `index`: one best-first queue ordered by (mindist, tree, page) holds
  /// nodes of both, so the traversal interleaves them by pure MINDIST order.
  /// The ingest engine hands the packed main tree as `index` and the
  /// in-memory tree over not-yet-merged segments as `delta`; correctness
  /// needs only that the two segment sets are disjoint (CandidateList merges
  /// pieces from either tree into one coverage). When the store is a live
  /// snapshot that owns write versions (TrajectorySource::OwnsWriteVersions)
  /// the result cache keys off the snapshot's versions instead of the
  /// index's — rebuilt delta/main instances restart their index-local
  /// versions at 0, which would alias stale cache entries.
  BFMstSearch(const TrajectoryIndex* index, const TrajectorySource* store,
              ResultCache* result_cache = nullptr,
              const TrajectoryIndex* delta = nullptr);

  /// Runs a k-MST query for `query` over `period`. Requirements (checked):
  /// the query trajectory covers the period, the period has positive
  /// duration, options.k >= 1. Returns at most k results ordered by
  /// ascending dissimilarity. Trajectories whose lifespan does not cover the
  /// period are not eligible (Definition 1 needs both trajectories valid
  /// throughout).
  std::vector<MstResult> Search(const Trajectory& query,
                                const TimeInterval& period,
                                const MstOptions& options = MstOptions(),
                                MstStats* stats = nullptr) const;

  /// The attached cross-query result cache, or nullptr.
  ResultCache* result_cache() const { return result_cache_; }

 private:
  const TrajectoryIndex* index_;
  const TrajectorySource* store_;
  ResultCache* result_cache_;
  const TrajectoryIndex* delta_;
};

}  // namespace mst

#endif  // MST_CORE_MST_SEARCH_H_
