// Cross-query DISSIM result cache — the third caching layer, above the page
// buffer and the decoded-node cache. BFMSTSearch's dominant cost under
// repeated traffic is the full-period DISSIM refinement of surviving
// candidates (the §4.4 post-processing integrals); overlapping queries
// re-integrate the same (trajectory, period) pairs from scratch. This cache
// memoizes those refinements across queries, keyed by (query-trajectory
// fingerprint, trajectory id, period, integration policy).
//
// The cache only ever replaces a ComputeDissim call with the value an
// identical earlier call produced, so query results stay byte-identical with
// the cache on or off, and — unlike the node cache, which sits under the
// traversal — it cannot touch node-access accounting at all: the traversal
// never consults it.
//
// Consistency: DISSIM(Q, T) depends on T's stored segments, so a cached
// value goes stale when the index ingests new segments for T. The version
// authority is the index (TrajectoryIndex::TrajectoryWriteVersion, bumped on
// every segment insert — the same write hook that invalidates the node
// cache); entries record the version observed *before* the refinement was
// computed, and Lookup() rejects any entry whose recorded version differs
// from the caller's current one. A writer racing a refinement therefore
// cannot cause a stale serve: the refinement publishes under the old
// version, and every later lookup passes the bumped one.

#ifndef MST_CORE_RESULT_CACHE_H_
#define MST_CORE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/core/dissim.h"
#include "src/geom/interval.h"
#include "src/geom/trajectory.h"

namespace mst {

namespace internal {
struct ResultCacheShard;
}  // namespace internal

/// 128-bit content fingerprint of a query trajectory's sample sequence
/// (timestamps and positions, bit-exact; the id is deliberately excluded so
/// geometrically identical queries share cache entries). Two independent
/// 64-bit mixing streams make accidental collisions ~2^-64 per pair —
/// negligible next to hardware fault rates.
struct QueryFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const QueryFingerprint&) const = default;
};

/// Fingerprints `query`'s samples. O(samples); deterministic.
QueryFingerprint FingerprintQuery(const Trajectory& query);

/// Identity of one memoized refinement: which query geometry, against which
/// stored trajectory, over which period, under which integration policy.
struct ResultCacheKey {
  QueryFingerprint fingerprint;
  TrajectoryId traj_id = kInvalidTrajectoryId;
  TimeInterval period{0.0, 0.0};
  IntegrationPolicy policy = IntegrationPolicy::kExact;

  bool operator==(const ResultCacheKey& o) const {
    return fingerprint == o.fingerprint && traj_id == o.traj_id &&
           period.begin == o.period.begin && period.end == o.period.end &&
           policy == o.policy;
  }
};

/// Sharded mutex+LRU cache of full-period DissimResult values.
///
/// Keys map to shards by hash; each shard owns `capacity / shard_count`
/// entries (±1, min 1) and evicts LRU-first under its own mutex. Capacity 0
/// disables the cache entirely: lookups miss without counting and inserts
/// are dropped (versions live in the index, so disabling loses nothing).
class ResultCache {
 public:
  /// `num_shards` 0 picks min(kDefaultShards, max(capacity, 1)); tests that
  /// need exact global-LRU behaviour pass 1. Shard count is fixed for the
  /// lifetime of the cache.
  explicit ResultCache(size_t capacity_entries, size_t num_shards = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  ~ResultCache();

  /// Default shard count, matching the node cache's.
  static constexpr size_t kDefaultShards = 8;

  /// Returns true and fills `*out` when a value cached under `key` with
  /// exactly `write_version` is resident (counts one hit). A resident entry
  /// recorded under any other version is stale: it is dropped, counted as
  /// one stale drop, and the lookup counts as a miss. Nothing is counted
  /// while disabled. `write_version` is the trajectory's current
  /// TrajectoryIndex::TrajectoryWriteVersion, read by the caller *before*
  /// the lookup (and re-used verbatim for the Insert after a miss).
  bool Lookup(const ResultCacheKey& key, uint64_t write_version,
              DissimResult* out) const;

  /// Publishes a refinement computed while the trajectory's write version
  /// was `write_version` (read before the computation — the NodeCache
  /// observe-then-publish discipline). Overwrites any resident entry for
  /// `key`. No-op while disabled. `cost` is the caller's estimate of what
  /// the refinement cost to compute (BFMSTSearch passes the sample count
  /// integrated over); entries cheaper than the admission threshold are not
  /// inserted — a cheap integral is not worth an LRU slot that could evict
  /// an expensive one. The default (+inf) always admits.
  void Insert(const ResultCacheKey& key, const DissimResult& value,
              uint64_t write_version,
              double cost = std::numeric_limits<double>::infinity());

  /// Drops every cached entry. Used between experiment phases for a
  /// deliberately cold cache.
  void Clear();

  /// Resizes the cache; 0 disables it and drops all entries. Shard count is
  /// fixed, so the effective floor of an enabled cache is one entry/shard.
  void SetCapacity(size_t capacity_entries);

  /// Sets the admission threshold: Insert calls whose `cost` is strictly
  /// below it are dropped (counted in admission_skips()). 0 — the default —
  /// admits everything. Purely an eviction-pressure knob: lookups are
  /// unaffected, so results stay byte-identical at any threshold (a skipped
  /// insert only means the next identical refinement recomputes).
  void SetMinAdmissionCost(double cost) {
    min_admission_cost_.store(cost, std::memory_order_relaxed);
  }

  double min_admission_cost() const {
    return min_admission_cost_.load(std::memory_order_relaxed);
  }

  /// Switches admission to an online threshold: a Frugal-style streaming
  /// median estimate of the observed finite refine costs replaces the
  /// hand-set SetMinAdmissionCost constant, so roughly the cheaper half of
  /// refinements stops competing for LRU slots without anyone tuning a
  /// number per workload. Each finite-cost Insert compares against the
  /// pre-update estimate, then nudges it one step toward the new cost
  /// (±max(1, estimate/16), clamped at 0). Infinite costs (the default
  /// argument) always admit and never feed the estimator. The estimator is
  /// intentionally racy (relaxed atomics; a lost update is one lost step) —
  /// admission is a pressure heuristic, and the Lookup path is untouched,
  /// so results stay byte-identical like the fixed threshold. Default off.
  void SetAdaptiveAdmission(bool on) {
    adaptive_admission_.store(on, std::memory_order_relaxed);
  }

  bool adaptive_admission() const {
    return adaptive_admission_.load(std::memory_order_relaxed);
  }

  /// Current streaming-median cost estimate (diagnostics/tests); 0 until
  /// the first finite-cost insert under adaptive admission.
  double admission_cost_estimate() const {
    return admission_estimate_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }
  size_t shard_count() const { return shards_.size(); }

  /// Lookups served from the cache since construction/ResetCounters().
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Lookups that fell through to a fresh computation. hits()+misses()
  /// equals the number of lookups performed while the cache was enabled.
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Resident entries dropped because their recorded write version no longer
  /// matched the caller's (each also counted one miss).
  int64_t stale_drops() const {
    return stale_drops_.load(std::memory_order_relaxed);
  }

  /// Inserts dropped by the admission threshold.
  int64_t admission_skips() const {
    return admission_skips_.load(std::memory_order_relaxed);
  }

  void ResetCounters() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    stale_drops_.store(0, std::memory_order_relaxed);
    admission_skips_.store(0, std::memory_order_relaxed);
  }

  /// Entries currently resident across all shards (diagnostics/tests).
  size_t resident_entries() const;

  /// Monotonic per-thread hit/miss tallies across all result caches, for
  /// exact per-query deltas under concurrent queries (cf.
  /// NodeCache::ThreadHits).
  static int64_t ThreadHits();
  static int64_t ThreadMisses();

 private:
  internal::ResultCacheShard& ShardFor(const ResultCacheKey& key) const;

  // Evicts LRU entries until the shard is back under its budget. Caller
  // holds the shard mutex.
  void EvictLocked(internal::ResultCacheShard& shard);

  // Distributes capacity_ over the shards (±1 entry, min 1).
  void AssignShardBudgets();

  size_t capacity_;
  std::vector<std::unique_ptr<internal::ResultCacheShard>> shards_;
  std::atomic<double> min_admission_cost_{0.0};
  std::atomic<bool> adaptive_admission_{false};
  std::atomic<double> admission_estimate_{0.0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> stale_drops_{0};
  mutable std::atomic<int64_t> admission_skips_{0};
};

}  // namespace mst

#endif  // MST_CORE_RESULT_CACHE_H_
