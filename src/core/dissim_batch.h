// Batch (structure-of-arrays) evaluation of the per-interval DISSIM
// integrals. The scalar path walks elementary intervals one trinomial at a
// time through IntegrateSegment — a chain of dependent calls the compiler
// cannot vectorize. Here the per-pair trinomials (a, b, c, len) are first
// materialized into flat arrays, then integrated in a tight pass: the
// trapezoid values (the common case — two clamped square roots and a
// multiply per interval) stream over the arrays in an auto-vectorizable
// loop, while the Lemma 1 error bounds and the exact/adaptive fallbacks
// reuse the scalar building blocks so every number matches the scalar path
// bit-for-bit (asserted by tests/dissim_batch_test.cc).

#ifndef MST_CORE_DISSIM_BATCH_H_
#define MST_CORE_DISSIM_BATCH_H_

#include <cstddef>
#include <vector>

#include "src/core/dissim.h"
#include "src/geom/moving_distance.h"

namespace mst {

/// Structure-of-arrays buffer of distance trinomials over their elementary
/// intervals. Reusable: Clear() keeps the capacity, so a thread-local batch
/// amortizes allocation across queries. Fillers must call Reserve() with the
/// interval count (cuts.size() is a safe upper bound) before the Add() loop —
/// that makes even a thread's *first* leaf allocation-free past the initial
/// reserve, instead of growing all four arrays by doubling mid-fill.
struct TrinomialBatch {
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  std::vector<double> len;

  size_t size() const { return a.size(); }
  bool empty() const { return a.empty(); }

  void Clear() {
    a.clear();
    b.clear();
    c.clear();
    len.clear();
  }

  void Reserve(size_t n) {
    a.reserve(n);
    b.reserve(n);
    c.reserve(n);
    len.reserve(n);
  }

  void Add(const DistanceTrinomial& tri) {
    a.push_back(tri.a);
    b.push_back(tri.b);
    c.push_back(tri.c);
    len.push_back(tri.dur);
  }

  /// Reconstructs element `i` for the scalar building blocks.
  DistanceTrinomial At(size_t i) const { return {a[i], b[i], c[i], len[i]}; }
};

/// Integrates every interval of `batch` under `policy` and accumulates the
/// results in index order — exactly the sum the scalar loop
/// `for (tri) total.Accumulate(IntegrateSegment(tri, policy))` produces,
/// bit-for-bit in every policy.
DissimResult IntegrateBatch(const TrinomialBatch& batch,
                            IntegrationPolicy policy);

}  // namespace mst

#endif  // MST_CORE_DISSIM_BATCH_H_
