#include "src/core/candidate.h"

#include <algorithm>
#include <cmath>

#include "src/core/bounds.h"
#include "src/util/check.h"

namespace mst {

CandidateList::CandidateList(TrajectoryId id, const TimeInterval& period)
    : id_(id), period_(period) {
  MST_CHECK(period.Duration() > 0.0);
}

void CandidateList::AddPiece(const TimeInterval& window,
                             const DissimResult& integral, double dist_begin,
                             double dist_end) {
  MST_CHECK(window.Duration() > 0.0);
  MST_CHECK(period_.Covers(window));
  covered_.Accumulate(integral);

  Piece piece{window.begin, window.end, dist_begin, dist_end};
  const auto pos = std::lower_bound(
      pieces_.begin(), pieces_.end(), piece,
      [](const Piece& a, const Piece& b) { return a.begin < b.begin; });
  const size_t idx = static_cast<size_t>(pos - pieces_.begin());
  // Segments of one trajectory are time-disjoint, so pieces can only touch
  // at shared sample timestamps (allow a measure-zero tolerance for safety).
  const double tol = 1e-9 * period_.Duration();
  if (idx > 0) {
    MST_CHECK_MSG(pieces_[idx - 1].end <= piece.begin + tol,
                  "overlapping coverage pieces for one trajectory");
  }
  if (idx < pieces_.size()) {
    MST_CHECK_MSG(piece.end <= pieces_[idx].begin + tol,
                  "overlapping coverage pieces for one trajectory");
  }
  pieces_.insert(pos, piece);

  // Merge with the left and/or right neighbour when they touch.
  size_t i = idx;
  if (i > 0 && pieces_[i - 1].end >= pieces_[i].begin - tol) {
    pieces_[i - 1].end = pieces_[i].end;
    pieces_[i - 1].dist_end = pieces_[i].dist_end;
    pieces_.erase(pieces_.begin() + static_cast<ptrdiff_t>(i));
    --i;
  }
  if (i + 1 < pieces_.size() &&
      pieces_[i].end >= pieces_[i + 1].begin - tol) {
    pieces_[i].end = pieces_[i + 1].end;
    pieces_[i].dist_end = pieces_[i + 1].dist_end;
    pieces_.erase(pieces_.begin() + static_cast<ptrdiff_t>(i) + 1);
  }
}

bool CandidateList::IsComplete() const {
  const double tol = 1e-9 * period_.Duration();
  return pieces_.size() == 1 && pieces_[0].begin <= period_.begin + tol &&
         pieces_[0].end >= period_.end - tol;
}

bool CandidateList::CoversInterval(const TimeInterval& window) const {
  const double tol = 1e-9 * period_.Duration();
  for (const Piece& p : pieces_) {
    if (p.begin <= window.begin + tol && window.end <= p.end + tol) {
      return true;
    }
  }
  return false;
}

double CandidateList::UncoveredDuration() const {
  double covered = 0.0;
  for (const Piece& p : pieces_) covered += p.end - p.begin;
  return std::max(0.0, period_.Duration() - covered);
}

template <typename EdgeFn, typename InteriorFn>
double CandidateList::SumGaps(double vmax, EdgeFn edge,
                              InteriorFn interior) const {
  // A candidate list is only created once a first piece has been retrieved.
  MST_CHECK_MSG(!pieces_.empty(), "gap bounds need at least one piece");
  double total = 0.0;
  const Piece& first = pieces_.front();
  if (first.begin > period_.begin) {
    total += edge(first.dist_begin, vmax, first.begin - period_.begin);
  }
  for (size_t i = 0; i + 1 < pieces_.size(); ++i) {
    const Piece& left = pieces_[i];
    const Piece& right = pieces_[i + 1];
    total += interior(left.dist_end, right.dist_begin, vmax,
                      right.begin - left.end);
  }
  const Piece& last = pieces_.back();
  if (last.end < period_.end) {
    total += edge(last.dist_end, vmax, period_.end - last.end);
  }
  return total;
}

double CandidateList::OptDissim(double vmax) const {
  return covered_.LowerBound() +
         SumGaps(vmax, OptimisticEdgeGap, OptimisticInteriorGap);
}

double CandidateList::PesDissim(double vmax) const {
  return covered_.value +
         SumGaps(vmax, PessimisticEdgeGap, PessimisticInteriorGap);
}

double CandidateList::OptDissimInc(double mindist) const {
  return covered_.LowerBound() + mindist * UncoveredDuration();
}

}  // namespace mst
