// Index-free exact k-MST baseline: computes DISSIM(Q, T) for every eligible
// trajectory in the store and keeps the k smallest. Serves as the ground
// truth in tests and as the "no index" comparison point in the ablation
// benches.

#ifndef MST_CORE_LINEAR_SCAN_H_
#define MST_CORE_LINEAR_SCAN_H_

#include <vector>

#include "src/core/dissim.h"
#include "src/core/mst_search.h"
#include "src/geom/interval.h"
#include "src/geom/trajectory.h"

namespace mst {

/// Brute-force k-MST over `store`. Only trajectories covering `period` are
/// eligible; `exclude_id` (optional) is skipped. Results are ordered by
/// ascending dissimilarity, ties broken by id — the same contract as
/// BFMstSearch::Search.
std::vector<MstResult> LinearScanKMst(
    const TrajectoryStore& store, const Trajectory& query,
    const TimeInterval& period, int k,
    IntegrationPolicy policy = IntegrationPolicy::kExact,
    TrajectoryId exclude_id = kInvalidTrajectoryId);

}  // namespace mst

#endif  // MST_CORE_LINEAR_SCAN_H_
