#include "src/core/dissim_batch.h"

#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace mst {
namespace {

// Trapezoid values for every interval, written into `values`. This is the
// hot loop: with the trinomials in flat arrays each element is two fused
// polynomial evaluations, two clamps, two square roots and a multiply, with
// no cross-iteration dependence — exactly the shape the auto-vectorizer
// wants (the TU is built with -fno-math-errno so sqrt stays branch-free).
//
// Per element this reproduces TrapezoidSegmentIntegral's value bit-for-bit:
// ValueAt(0) = sqrt(clamp((a·0+b)·0+c)) collapses to sqrt(clamp(c)) for
// finite coefficients, and ValueAt(len) is evaluated with the identical
// Horner expression.
void TrapezoidValues(const TrinomialBatch& batch, std::vector<double>* values) {
  const size_t n = batch.size();
  values->resize(n);
  const double* a = batch.a.data();
  const double* b = batch.b.data();
  const double* c = batch.c.data();
  const double* len = batch.len.data();
  double* out = values->data();
  for (size_t i = 0; i < n; ++i) {
    double v0 = c[i];
    if (!(v0 > 0.0)) v0 = 0.0;
    double v1 = (a[i] * len[i] + b[i]) * len[i] + c[i];
    if (!(v1 > 0.0)) v1 = 0.0;
    out[i] = 0.5 * (std::sqrt(v0) + std::sqrt(v1)) * len[i];
  }
}

// Lemma 1 bound for element `i`, given its trapezoid value. Mirrors the
// tail of TrapezoidSegmentIntegral (flex clamp, len³/12 factor, clamp to
// the value itself when the bound is unbounded or looser than trivial).
double ErrorBound(const TrinomialBatch& batch, size_t i, double value) {
  if (batch.a[i] <= 0.0) return 0.0;  // constant distance: trapezoid exact
  const DistanceTrinomial tri = batch.At(i);
  const double len = tri.dur;
  const double second = tri.SecondDerivativeAt(tri.ArgMinTau());
  double bound = len * len * len / 12.0 * second;
  if (!(bound < value)) bound = value;
  return bound;
}

}  // namespace

DissimResult IntegrateBatch(const TrinomialBatch& batch,
                            IntegrationPolicy policy) {
  DissimResult total;
  const size_t n = batch.size();
  if (n == 0) return total;

  if (policy == IntegrationPolicy::kExact) {
    for (size_t i = 0; i < n; ++i) {
      total.value += ExactSegmentIntegral(batch.At(i));
    }
    return total;
  }

  static thread_local std::vector<double> values;
  TrapezoidValues(batch, &values);

  if (policy == IntegrationPolicy::kTrapezoid) {
    for (size_t i = 0; i < n; ++i) {
      total.value += values[i];
      total.error_bound += ErrorBound(batch, i, values[i]);
    }
    return total;
  }

  MST_CHECK_MSG(policy == IntegrationPolicy::kAdaptive,
                "unknown integration policy");
  for (size_t i = 0; i < n; ++i) {
    const double bound = ErrorBound(batch, i, values[i]);
    if (bound <= kAdaptiveRelTol * values[i]) {
      total.value += values[i];
      total.error_bound += bound;
    } else {
      total.value += ExactSegmentIntegral(batch.At(i));
    }
  }
  return total;
}

}  // namespace mst
