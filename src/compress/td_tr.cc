#include "src/compress/td_tr.h"

#include <utility>
#include <vector>

#include "src/util/check.h"

namespace mst {

double SynchronizedEuclideanDistance(const TPoint& p, const TPoint& start,
                                     const TPoint& end) {
  MST_DCHECK(start.t < end.t);
  MST_DCHECK(start.t <= p.t && p.t <= end.t);
  const Vec2 synced = Lerp(start, end, p.t);
  return Distance(p.p, synced);
}

Trajectory TdTrCompress(const Trajectory& t, double tolerance) {
  const size_t n = t.size();
  if (n <= 2 || tolerance <= 0.0) return t;

  std::vector<bool> keep(n, false);
  keep.front() = true;
  keep.back() = true;

  // Explicit stack of (first, last) index ranges to examine.
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.emplace_back(0, n - 1);
  while (!ranges.empty()) {
    const auto [lo, hi] = ranges.back();
    ranges.pop_back();
    if (hi - lo < 2) continue;
    const TPoint& a = t.sample(lo);
    const TPoint& b = t.sample(hi);
    double worst = -1.0;
    size_t split = lo;
    for (size_t i = lo + 1; i < hi; ++i) {
      const double err = SynchronizedEuclideanDistance(t.sample(i), a, b);
      if (err > worst) {
        worst = err;
        split = i;
      }
    }
    if (worst > tolerance) {
      keep[split] = true;
      ranges.emplace_back(lo, split);
      ranges.emplace_back(split, hi);
    }
  }

  std::vector<TPoint> out;
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(t.sample(i));
  }
  return Trajectory(t.id(), std::move(out));
}

Trajectory TdTrCompressByFraction(const Trajectory& t, double p_fraction) {
  return TdTrCompress(t, p_fraction * t.SpatialLength());
}

}  // namespace mst
