// TD-TR trajectory compression (Meratnia & By, the paper's ref [12]):
// top-down Douglas–Peucker driven by the Synchronized Euclidean Distance
// (SED), i.e., the error of a dropped sample is measured against the
// *time-synchronized* position on the approximating segment — the
// spatiotemporal analogue of the classic perpendicular-distance split rule.
//
// §5.2 uses TD-TR to derive under-sampled query trajectories: the parameter
// p scales the SED tolerance as a fraction of the trajectory's length.

#ifndef MST_COMPRESS_TD_TR_H_
#define MST_COMPRESS_TD_TR_H_

#include "src/geom/trajectory.h"

namespace mst {

/// SED of sample `p` against the movement start→end: the distance between
/// p's position and the position linearly interpolated on [start, end] at
/// p's own timestamp. Requires start.t < end.t and start.t <= p.t <= end.t.
double SynchronizedEuclideanDistance(const TPoint& p, const TPoint& start,
                                     const TPoint& end);

/// Top-down compression: returns the sub-sampled trajectory (always keeping
/// the first and last samples) whose SED error is at most `tolerance` at
/// every dropped sample. tolerance <= 0 keeps every sample.
Trajectory TdTrCompress(const Trajectory& t, double tolerance);

/// The paper's parameterization: tolerance = p_fraction · SpatialLength(t),
/// with p_fraction e.g. 0.001 for the paper's "0.1 %" setting.
Trajectory TdTrCompressByFraction(const Trajectory& t, double p_fraction);

}  // namespace mst

#endif  // MST_COMPRESS_TD_TR_H_
