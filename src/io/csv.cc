#include "src/io/csv.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/util/check.h"

namespace mst {
namespace {

// RAII FILE handle.
struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// Splits `line` on `sep`, trimming spaces; empty fields preserved.
std::vector<std::string> Split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(sep, start);
    std::string field = line.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start);
    // Trim.
    const size_t first = field.find_first_not_of(" \t\r");
    const size_t last = field.find_last_not_of(" \t\r");
    fields.push_back(first == std::string::npos
                         ? std::string()
                         : field.substr(first, last - first + 1));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseId(const std::string& s, TrajectoryId* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

// Reads all lines of `path`; nullopt on open failure.
std::optional<std::vector<std::string>> ReadLines(const std::string& path,
                                                  std::string* error) {
  FilePtr file(std::fopen(path.c_str(), "r"));
  if (file == nullptr) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string current;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), file.get()) != nullptr) {
    current += buf;
    if (!current.empty() && current.back() == '\n') {
      current.pop_back();
      if (!current.empty() && current.back() == '\r') current.pop_back();
      lines.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

// Days since epoch-ish ordinal for dd/mm/yyyy (proleptic Gregorian; only
// differences matter).
std::optional<int64_t> DateOrdinal(const std::string& date) {
  int d = 0;
  int m = 0;
  int y = 0;
  if (std::sscanf(date.c_str(), "%d/%d/%d", &d, &m, &y) != 3) {
    return std::nullopt;
  }
  // Howard Hinnant's days_from_civil.
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

std::optional<int64_t> TimeOfDaySeconds(const std::string& time) {
  int h = 0;
  int m = 0;
  int s = 0;
  if (std::sscanf(time.c_str(), "%d:%d:%d", &h, &m, &s) != 3) {
    return std::nullopt;
  }
  return static_cast<int64_t>(h) * 3600 + m * 60 + s;
}

}  // namespace

bool SaveTrajectoriesCsv(const TrajectoryStore& store,
                         const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) return false;
  std::fprintf(file.get(), "# traj_id,t,x,y\n");
  for (const Trajectory& t : store.trajectories()) {
    for (const TPoint& s : t.samples()) {
      if (std::fprintf(file.get(), "%lld,%.17g,%.17g,%.17g\n",
                       static_cast<long long>(t.id()), s.t, s.p.x,
                       s.p.y) < 0) {
        return false;
      }
    }
  }
  return std::fflush(file.get()) == 0;
}

std::optional<TrajectoryStore> LoadTrajectoriesCsv(const std::string& path,
                                                   std::string* error) {
  const auto lines = ReadLines(path, error);
  if (!lines.has_value()) return std::nullopt;

  TrajectoryStore store;
  TrajectoryId current_id = kInvalidTrajectoryId;
  std::vector<TPoint> samples;
  auto flush = [&]() {
    if (!samples.empty()) {
      store.Add(Trajectory(current_id, std::move(samples)));
      samples.clear();
    }
  };
  size_t line_no = 0;
  for (const std::string& line : *lines) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> f = Split(line, ',');
    TrajectoryId id;
    double t;
    double x;
    double y;
    if (f.size() != 4 || !ParseId(f[0], &id) || !ParseDouble(f[1], &t) ||
        !ParseDouble(f[2], &x) || !ParseDouble(f[3], &y)) {
      SetError(error, path + ": malformed line " + std::to_string(line_no));
      return std::nullopt;
    }
    if (id != current_id) {
      flush();
      current_id = id;
    } else if (!samples.empty() && t <= samples.back().t) {
      SetError(error, path + ": non-increasing timestamp at line " +
                          std::to_string(line_no));
      return std::nullopt;
    }
    samples.push_back({t, {x, y}});
  }
  flush();
  return store;
}

std::optional<TrajectoryStore> LoadTrucksPortalCsv(const std::string& path,
                                                   std::string* error) {
  const auto lines = ReadLines(path, error);
  if (!lines.has_value()) return std::nullopt;

  struct Row {
    TrajectoryId id;
    int64_t timestamp;
    Vec2 p;
  };
  std::vector<Row> rows;
  int64_t min_ts = INT64_MAX;
  size_t line_no = 0;
  for (const std::string& line : *lines) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> f = Split(line, ';');
    // obj-id;traj-id;date;time;lat;lon;x;y
    TrajectoryId traj_id;
    double x;
    double y;
    if (f.size() < 8 || !ParseId(f[1], &traj_id) || !ParseDouble(f[6], &x) ||
        !ParseDouble(f[7], &y)) {
      SetError(error, path + ": malformed line " + std::to_string(line_no));
      return std::nullopt;
    }
    const auto day = DateOrdinal(f[2]);
    const auto tod = TimeOfDaySeconds(f[3]);
    if (!day.has_value() || !tod.has_value()) {
      SetError(error,
               path + ": bad date/time at line " + std::to_string(line_no));
      return std::nullopt;
    }
    const int64_t ts = *day * 86400 + *tod;
    min_ts = std::min(min_ts, ts);
    rows.push_back({traj_id, ts, {x, y}});
  }
  if (rows.empty()) {
    SetError(error, path + ": no data rows");
    return std::nullopt;
  }

  // Group per trajectory, sort by time, drop duplicate timestamps.
  std::map<TrajectoryId, std::vector<TPoint>> grouped;
  for (const Row& r : rows) {
    grouped[r.id].push_back(
        {static_cast<double>(r.timestamp - min_ts), r.p});
  }
  TrajectoryStore store;
  for (auto& [id, samples] : grouped) {
    std::sort(samples.begin(), samples.end(),
              [](const TPoint& a, const TPoint& b) { return a.t < b.t; });
    std::vector<TPoint> unique;
    for (const TPoint& s : samples) {
      if (unique.empty() || s.t > unique.back().t) unique.push_back(s);
    }
    store.Add(Trajectory(id, std::move(unique)));
  }
  return store;
}

}  // namespace mst
