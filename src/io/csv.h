// Trajectory dataset import/export.
//
// Two on-disk formats are supported:
//  * the library's native CSV: one sample per line, `traj_id,t,x,y`,
//    samples of one trajectory consecutive and sorted by time;
//  * the R-tree-portal "Trucks" format the paper's real dataset ships in
//    (semicolon-separated: obj-id;traj-id;date(dd/mm/yyyy);time(hh:mm:ss);
//    lat;lon;x;y) — so the §5.2 quality experiment can be re-run against
//    the real data when a copy is available.
//
// The library does not use exceptions: loaders return std::nullopt and fill
// `*error` on malformed input.

#ifndef MST_IO_CSV_H_
#define MST_IO_CSV_H_

#include <optional>
#include <string>

#include "src/geom/trajectory.h"

namespace mst {

/// Writes the store in native CSV. Returns false on I/O failure.
bool SaveTrajectoriesCsv(const TrajectoryStore& store,
                         const std::string& path);

/// Loads native CSV written by SaveTrajectoriesCsv (or by hand). Lines
/// starting with '#' and blank lines are ignored. Samples of one trajectory
/// must be consecutive and in increasing time order.
std::optional<TrajectoryStore> LoadTrajectoriesCsv(const std::string& path,
                                                   std::string* error);

/// Loads the R-tree-portal Trucks format. Trajectory identity is the
/// `traj-id` column; timestamps are seconds since the earliest date/time in
/// the file; coordinates are the metric x;y columns. Duplicate timestamps
/// within a trajectory keep the first sample.
std::optional<TrajectoryStore> LoadTrucksPortalCsv(const std::string& path,
                                                   std::string* error);

}  // namespace mst

#endif  // MST_IO_CSV_H_
