// Index persistence: serialize a built trajectory index (its 4 KB pages
// plus root/height/counter metadata) to a file and load it back for
// querying. A loaded index is read-only — the build-time in-memory state of
// the insertion policies (trajectory chains, rightmost paths) is not
// persisted, and BFMST/range/NN search never needs it.

#ifndef MST_IO_INDEX_IO_H_
#define MST_IO_INDEX_IO_H_

#include <memory>
#include <optional>
#include <string>

#include "src/index/trajectory_index.h"

namespace mst {

/// Writes `index` (pages + metadata) to `path`. Returns false on I/O error.
bool SaveIndex(const TrajectoryIndex& index, const std::string& path);

/// Loads an index previously written by SaveIndex. The returned index
/// answers all read-side queries; calling Insert on it aborts. Returns
/// nullptr and fills `*error` on failure.
std::unique_ptr<TrajectoryIndex> LoadIndex(const std::string& path,
                                           std::string* error);

}  // namespace mst

#endif  // MST_IO_INDEX_IO_H_
