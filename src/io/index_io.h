// Index persistence: serialize a built trajectory index (its 4 KB pages
// plus root/height/counter metadata) to a file and load it back for
// querying. A loaded index is read-only — the build-time in-memory state of
// the insertion policies (trajectory chains, rightmost paths) is not
// persisted, and BFMST/range/NN search never needs it.

#ifndef MST_IO_INDEX_IO_H_
#define MST_IO_INDEX_IO_H_

#include <memory>
#include <optional>
#include <string>

#include "src/index/trajectory_index.h"

namespace mst {

/// Writes `index` (pages + metadata) to `path`. Returns false on I/O error.
bool SaveIndex(const TrajectoryIndex& index, const std::string& path);

/// How to open a saved index. Invalid combinations are explicit load
/// errors, never silent fallbacks: requesting read-write fails (a saved
/// index holds no insertion state) — with a format-specific message when
/// the requested leaf format additionally mismatches what the file stores —
/// and a zero-page buffer fails before any I/O.
struct IndexOpenOptions {
  /// Buffer/cache/leaf-format configuration of the loaded index. The leaf
  /// format only matters for writes, which a loaded index rejects; it is
  /// still validated under `read_write` so the error surfaces at open time
  /// rather than on the first insert.
  TrajectoryIndex::Options index;
  /// Request a mutable index. Always an error today (see above) — the flag
  /// exists so callers state intent and get a diagnosis instead of an
  /// abort later.
  bool read_write = false;
};

/// Loads an index previously written by SaveIndex. The returned index
/// answers all read-side queries; calling Insert on it aborts. Returns
/// nullptr and fills `*error` on failure.
std::unique_ptr<TrajectoryIndex> LoadIndex(const std::string& path,
                                           std::string* error);

/// LoadIndex honoring explicit open options (validated — see
/// IndexOpenOptions). The two-argument overload is equivalent to passing
/// default options.
std::unique_ptr<TrajectoryIndex> LoadIndex(const std::string& path,
                                           const IndexOpenOptions& options,
                                           std::string* error);

}  // namespace mst

#endif  // MST_IO_INDEX_IO_H_
