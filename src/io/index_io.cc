#include "src/io/index_io.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/index/node.h"
#include "src/util/check.h"

namespace mst {
namespace {

constexpr char kMagic[8] = {'M', 'S', 'T', 'I', 'D', 'X', '0', '1'};

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

// Fixed-size header following the magic.
struct Header {
  int64_t page_count = 0;
  PageId root = kInvalidPageId;
  int32_t height = 0;
  int64_t entry_count = 0;
  double max_speed = 0.0;
  char name[32] = {};
};
static_assert(std::is_trivially_copyable_v<Header>);

/// Read-only deserialized index: pages restored verbatim; insertion state
/// (chains, rightmost paths) is gone, so Insert aborts.
class LoadedIndex : public TrajectoryIndex {
 public:
  LoadedIndex(const Options& options, std::string name)
      : TrajectoryIndex(options), name_(std::move(name)) {}

  void Insert(const LeafEntry&) override {
    MST_CHECK_MSG(false, "a loaded index is read-only");
  }

  std::string name() const override { return name_; }

  void Restore(const Header& header, const std::vector<Page>& pages) {
    for (const Page& page : pages) {
      const PageId id = buffer().AllocatePage();
      PageGuard guard = buffer().PinMutable(id);
      *guard.mutable_page() = page;
    }
    buffer().Flush();
    set_root(header.root);
    set_height(header.height);
    RestoreStats(header.entry_count, header.max_speed);
  }

 private:
  std::string name_;
};

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool SaveIndex(const TrajectoryIndex& index, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;

  // Make sure every dirty frame is on the simulated disk first.
  index.buffer().Flush();

  Header header;
  header.page_count = index.NodeCount();
  header.root = index.root();
  header.height = index.height();
  header.entry_count = index.EntryCount();
  header.max_speed = index.max_speed();
  const std::string name = index.name();
  std::strncpy(header.name, name.c_str(), sizeof(header.name) - 1);

  if (std::fwrite(kMagic, 1, sizeof(kMagic), file.get()) != sizeof(kMagic)) {
    return false;
  }
  if (std::fwrite(&header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return false;
  }
  // Page payload, read through the buffer so accounting stays consistent.
  for (PageId id = 0; id < header.page_count; ++id) {
    const PageGuard page = index.buffer().Pin(id);
    if (std::fwrite(page->bytes.data(), 1, kPageSize, file.get()) !=
        kPageSize) {
      return false;
    }
  }
  return std::fflush(file.get()) == 0;
}

std::unique_ptr<TrajectoryIndex> LoadIndex(const std::string& path,
                                           std::string* error) {
  return LoadIndex(path, IndexOpenOptions(), error);
}

std::unique_ptr<TrajectoryIndex> LoadIndex(const std::string& path,
                                           const IndexOpenOptions& options,
                                           std::string* error) {
  if (options.index.build_buffer_pages == 0) {
    SetError(error, path +
                        ": invalid open options: build_buffer_pages must be "
                        "at least 1");
    return nullptr;
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    SetError(error, "cannot open " + path);
    return nullptr;
  }
  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    SetError(error, path + ": not an index file");
    return nullptr;
  }
  Header header;
  if (std::fread(&header, 1, sizeof(header), file.get()) != sizeof(header)) {
    SetError(error, path + ": truncated header");
    return nullptr;
  }
  if (header.page_count < 0 || header.height < 0 ||
      (header.page_count > 0 &&
       (header.root < 0 || header.root >= header.page_count))) {
    SetError(error, path + ": corrupt header");
    return nullptr;
  }
  if (header.entry_count < 0 || !std::isfinite(header.max_speed) ||
      header.max_speed < 0.0) {
    SetError(error, path + ": corrupt header (entry count / max speed)");
    return nullptr;
  }
  std::vector<Page> pages(static_cast<size_t>(header.page_count));
  for (Page& page : pages) {
    if (std::fread(page.bytes.data(), 1, kPageSize, file.get()) !=
        kPageSize) {
      SetError(error, path + ": truncated page payload");
      return nullptr;
    }
  }
  char extra;
  if (std::fread(&extra, 1, 1, file.get()) == 1) {
    SetError(error, path + ": trailing bytes after page payload");
    return nullptr;
  }
  if (options.read_write) {
    // Read-write can never be honored (insertion state is not persisted);
    // diagnose the most actionable mismatch first. A v2 (SoA) write format
    // against a file whose leaves are v1 — or vice versa — would corrupt
    // the page-format invariants long before the missing chains mattered,
    // so that case gets its own message.
    bool file_has_v2_leaf = false;
    for (const Page& page : pages) {
      if (IsV2LeafPage(page)) {
        file_has_v2_leaf = true;
        break;
      }
    }
    const bool want_v2 =
        options.index.leaf_format == LeafPageFormat::kV2Soa;
    if (header.page_count > 0 && want_v2 != file_has_v2_leaf) {
      SetError(error,
               path + (want_v2
                           ? ": cannot open read-write: requested v2 (SoA) "
                             "leaf writes, but the file stores v1 (AoS) leaf "
                             "pages; open read-only or rebuild the index in "
                             "the v2 format"
                           : ": cannot open read-write: requested v1 (AoS) "
                             "leaf writes, but the file stores v2 (SoA) leaf "
                             "pages; open read-only or rebuild the index in "
                             "the v1 format"));
      return nullptr;
    }
    SetError(error,
             path +
                 ": cannot open read-write: a saved index holds no "
                 "insertion state (trajectory chains, rightmost paths); "
                 "open read-only, or rebuild from the trajectory store to "
                 "mutate");
    return nullptr;
  }
  header.name[sizeof(header.name) - 1] = '\0';
  auto index = std::make_unique<LoadedIndex>(
      options.index, std::string(header.name) + " (loaded)");
  index->Restore(header, pages);
  return index;
}

}  // namespace mst
