#include "src/io/index_io.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/index/leaf_codec_v3.h"
#include "src/index/node.h"
#include "src/index/node_codec_v3.h"
#include "src/util/check.h"

namespace mst {
namespace {

constexpr char kMagic[8] = {'M', 'S', 'T', 'I', 'D', 'X', '0', '1'};

const char* FormatName(LeafPageFormat format) {
  switch (format) {
    case LeafPageFormat::kV1Aos:
      return "v1 (AoS)";
    case LeafPageFormat::kV2Soa:
      return "v2 (SoA)";
    case LeafPageFormat::kV3Compressed:
      return "v3 (compressed)";
  }
  return "unknown";
}

const char* FormatName(InternalPageFormat format) {
  switch (format) {
    case InternalPageFormat::kV1Aos:
      return "v1 (AoS)";
    case InternalPageFormat::kV3Compressed:
      return "v3 (compressed)";
  }
  return "unknown";
}

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

// Fixed-size header following the magic.
struct Header {
  int64_t page_count = 0;
  PageId root = kInvalidPageId;
  int32_t height = 0;
  int64_t entry_count = 0;
  double max_speed = 0.0;
  char name[32] = {};
};
static_assert(std::is_trivially_copyable_v<Header>);

/// Read-only deserialized index: pages restored verbatim; insertion state
/// (chains, rightmost paths) is gone, so Insert aborts.
class LoadedIndex : public TrajectoryIndex {
 public:
  LoadedIndex(const Options& options, std::string name)
      : TrajectoryIndex(options), name_(std::move(name)) {}

  void Insert(const LeafEntry&) override {
    MST_CHECK_MSG(false, "a loaded index is read-only");
  }

  std::string name() const override { return name_; }

  void Restore(const Header& header, const std::vector<Page>& pages) {
    for (const Page& page : pages) {
      const PageId id = buffer().AllocatePage();
      PageGuard guard = buffer().PinMutable(id);
      *guard.mutable_page() = page;
    }
    buffer().Flush();
    set_root(header.root);
    set_height(header.height);
    RestoreStats(header.entry_count, header.max_speed);
  }

 private:
  std::string name_;
};

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool SaveIndex(const TrajectoryIndex& index, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;

  // Make sure every dirty frame is on the simulated disk first.
  index.buffer().Flush();

  Header header;
  header.page_count = index.NodeCount();
  header.root = index.root();
  header.height = index.height();
  header.entry_count = index.EntryCount();
  header.max_speed = index.max_speed();
  const std::string name = index.name();
  std::strncpy(header.name, name.c_str(), sizeof(header.name) - 1);

  if (std::fwrite(kMagic, 1, sizeof(kMagic), file.get()) != sizeof(kMagic)) {
    return false;
  }
  if (std::fwrite(&header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return false;
  }
  // Page payload, read through the buffer so accounting stays consistent.
  for (PageId id = 0; id < header.page_count; ++id) {
    const PageGuard page = index.buffer().Pin(id);
    if (std::fwrite(page->bytes.data(), 1, kPageSize, file.get()) !=
        kPageSize) {
      return false;
    }
  }
  return std::fflush(file.get()) == 0;
}

std::unique_ptr<TrajectoryIndex> LoadIndex(const std::string& path,
                                           std::string* error) {
  return LoadIndex(path, IndexOpenOptions(), error);
}

std::unique_ptr<TrajectoryIndex> LoadIndex(const std::string& path,
                                           const IndexOpenOptions& options,
                                           std::string* error) {
  if (options.index.build_buffer_pages == 0) {
    SetError(error, path +
                        ": invalid open options: build_buffer_pages must be "
                        "at least 1");
    return nullptr;
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    SetError(error, "cannot open " + path);
    return nullptr;
  }
  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), file.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    SetError(error, path + ": not an index file");
    return nullptr;
  }
  Header header;
  if (std::fread(&header, 1, sizeof(header), file.get()) != sizeof(header)) {
    SetError(error, path + ": truncated header");
    return nullptr;
  }
  if (header.page_count < 0 || header.height < 0 ||
      (header.page_count > 0 &&
       (header.root < 0 || header.root >= header.page_count))) {
    SetError(error, path + ": corrupt header");
    return nullptr;
  }
  if (header.entry_count < 0 || !std::isfinite(header.max_speed) ||
      header.max_speed < 0.0) {
    SetError(error, path + ": corrupt header (entry count / max speed)");
    return nullptr;
  }
  std::vector<Page> pages(static_cast<size_t>(header.page_count));
  for (Page& page : pages) {
    if (std::fread(page.bytes.data(), 1, kPageSize, file.get()) !=
        kPageSize) {
      SetError(error, path + ": truncated page payload");
      return nullptr;
    }
  }
  char extra;
  if (std::fread(&extra, 1, 1, file.get()) == 1) {
    SetError(error, path + ": trailing bytes after page payload");
    return nullptr;
  }
  // Compressed pages carry enough structure to be mis-parsed into
  // out-of-bounds column reads, so they are the page flavors validated up
  // front instead of trusted (v1/v2 pages are fixed-layout; their decode
  // checks suffice).
  for (size_t i = 0; i < pages.size(); ++i) {
    if (IsV3LeafPage(pages[i])) {
      const std::string problem = ValidateV3LeafPage(pages[i]);
      if (!problem.empty()) {
        SetError(error, path + ": corrupt v3 leaf page " + std::to_string(i) +
                            ": " + problem);
        return nullptr;
      }
    } else if (IsV3InternalPage(pages[i])) {
      const std::string problem = ValidateV3InternalPage(pages[i]);
      if (!problem.empty()) {
        SetError(error, path + ": corrupt v3 internal page " +
                            std::to_string(i) + ": " + problem);
        return nullptr;
      }
    }
  }
  if (options.read_write) {
    // Read-write can never be honored (insertion state is not persisted);
    // diagnose the most actionable mismatch first. A write format differing
    // from what the file's leaves actually store would corrupt the
    // page-format invariants long before the missing chains mattered, so
    // that case gets its own message. A v3 file legitimately contains v2
    // fallback pages for incompressible leaves, so any v3 leaf marks the
    // whole file v3.
    bool file_has_v2_leaf = false;
    bool file_has_v3_leaf = false;
    bool file_has_v3_internal = false;
    for (const Page& page : pages) {
      if (IsV3LeafPage(page)) file_has_v3_leaf = true;
      else if (IsV2LeafPage(page)) file_has_v2_leaf = true;
      else if (IsV3InternalPage(page)) file_has_v3_internal = true;
    }
    const LeafPageFormat file_format =
        file_has_v3_leaf ? LeafPageFormat::kV3Compressed
        : file_has_v2_leaf ? LeafPageFormat::kV2Soa
                           : LeafPageFormat::kV1Aos;
    if (header.page_count > 0 && options.index.leaf_format != file_format) {
      SetError(error, path + ": cannot open read-write: requested " +
                          FormatName(options.index.leaf_format) +
                          " leaf writes, but the file stores " +
                          FormatName(file_format) +
                          " leaf pages; open read-only or rebuild the index "
                          "in the requested format");
      return nullptr;
    }
    // Same story for internal pages (v3 internal files legitimately contain
    // v1 fallback pages for incompressible nodes, so any v3 internal page
    // marks the file v3-internal).
    const InternalPageFormat file_internal_format =
        file_has_v3_internal ? InternalPageFormat::kV3Compressed
                             : InternalPageFormat::kV1Aos;
    if (header.page_count > 0 &&
        options.index.internal_format != file_internal_format) {
      SetError(error,
               path + ": cannot open read-write: requested " +
                   FormatName(options.index.internal_format) +
                   " internal-node writes, but the file stores " +
                   FormatName(file_internal_format) +
                   " internal pages; open read-only or rebuild the index "
                   "in the requested format");
      return nullptr;
    }
    SetError(error,
             path +
                 ": cannot open read-write: a saved index holds no "
                 "insertion state (trajectory chains, rightmost paths); "
                 "open read-only, or rebuild from the trajectory store to "
                 "mutate");
    return nullptr;
  }
  header.name[sizeof(header.name) - 1] = '\0';
  auto index = std::make_unique<LoadedIndex>(
      options.index, std::string(header.name) + " (loaded)");
  index->Restore(header, pages);
  return index;
}

}  // namespace mst
