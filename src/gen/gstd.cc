#include "src/gen/gstd.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/check.h"
#include "src/util/random.h"

namespace mst {
namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

// Reflects `v` (and flips the matching direction component) into [0, 1].
void Bounce(double* v, double* dir) {
  while (*v < 0.0 || *v > 1.0) {
    if (*v < 0.0) {
      *v = -*v;
      *dir = -*dir;
    } else {
      *v = 2.0 - *v;
      *dir = -*dir;
    }
  }
}

void Wrap(double* v) {
  *v -= std::floor(*v);
}

}  // namespace

TrajectoryStore GenerateGstd(const GstdOptions& options) {
  MST_CHECK(options.num_objects >= 1);
  MST_CHECK(options.samples_per_object >= 2);
  MST_CHECK(options.time_end > options.time_begin);

  Rng master(options.seed);
  TrajectoryStore store;
  const int n = options.samples_per_object;
  const double duration = options.time_end - options.time_begin;

  for (int obj = 0; obj < options.num_objects; ++obj) {
    Rng rng = master.Fork(static_cast<uint64_t>(obj));

    // Timestamps: a regular grid, optionally jittered, endpoints pinned so
    // every trajectory covers the full window.
    std::vector<double> times(static_cast<size_t>(n));
    const double dt = duration / (n - 1);
    times[0] = options.time_begin;
    for (int i = 1; i < n - 1; ++i) {
      double jitter = 0.0;
      if (options.timestamp_jitter > 0.0) {
        jitter = rng.Uniform(-options.timestamp_jitter,
                             options.timestamp_jitter) *
                 dt * 0.5;
      }
      times[static_cast<size_t>(i)] = options.time_begin + i * dt + jitter;
    }
    times[static_cast<size_t>(n - 1)] = options.time_end;
    // Jitter cannot reorder (|jitter| < dt/2), but guard anyway.
    for (int i = 1; i < n; ++i) {
      if (times[static_cast<size_t>(i)] <= times[static_cast<size_t>(i - 1)]) {
        times[static_cast<size_t>(i)] =
            std::nextafter(times[static_cast<size_t>(i - 1)], 1e300);
      }
    }

    // Initial position.
    double x;
    double y;
    if (options.initial == GstdOptions::InitialDistribution::kUniform) {
      x = rng.NextDouble();
      y = rng.NextDouble();
    } else {
      x = std::clamp(rng.Normal(0.5, 0.15), 0.0, 1.0);
      y = std::clamp(rng.Normal(0.5, 0.15), 0.0, 1.0);
    }

    double heading = rng.Uniform(0.0, kTwoPi);
    std::vector<TPoint> samples;
    samples.reserve(static_cast<size_t>(n));
    samples.push_back({times[0], {x, y}});

    for (int i = 1; i < n; ++i) {
      const double step_dt =
          times[static_cast<size_t>(i)] - times[static_cast<size_t>(i - 1)];
      if (rng.Bernoulli(options.heading_change_prob)) {
        heading = rng.Uniform(0.0, kTwoPi);
      } else if (options.heading_jitter > 0.0) {
        heading += rng.Uniform(-options.heading_jitter,
                               options.heading_jitter);
      }
      double speed;
      if (options.speed == GstdOptions::SpeedDistribution::kLogNormal) {
        speed = rng.LogNormal(options.speed_param1, options.speed_param2);
      } else {
        speed = std::max(0.0, rng.Normal(options.speed_param1,
                                         options.speed_param2));
      }
      speed *= options.speed_scale;

      double dx = std::cos(heading) * speed * step_dt;
      double dy = std::sin(heading) * speed * step_dt;
      x += dx;
      y += dy;
      if (options.boundary == GstdOptions::Boundary::kBounce) {
        double dirx = std::cos(heading);
        double diry = std::sin(heading);
        Bounce(&x, &dirx);
        Bounce(&y, &diry);
        heading = std::atan2(diry, dirx);
      } else {
        Wrap(&x);
        Wrap(&y);
      }
      samples.push_back({times[static_cast<size_t>(i)], {x, y}});
    }

    store.Add(Trajectory(options.first_id + obj, std::move(samples)));
  }
  return store;
}

}  // namespace mst
