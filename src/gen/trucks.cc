#include "src/gen/trucks.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/check.h"
#include "src/util/random.h"

namespace mst {
namespace {

// The road skeleton: waypoints plus nearest-neighbour edges.
struct RoadNetwork {
  std::vector<Vec2> nodes;
  std::vector<std::vector<int>> adjacency;
};

RoadNetwork BuildNetwork(const TrucksOptions& options, Rng* rng) {
  RoadNetwork net;
  net.nodes.reserve(static_cast<size_t>(options.num_waypoints));
  for (int i = 0; i < options.num_waypoints; ++i) {
    net.nodes.push_back({rng->Uniform(0.0, options.area_meters),
                         rng->Uniform(0.0, options.area_meters)});
  }
  net.adjacency.assign(net.nodes.size(), {});
  const int degree = std::max(1, options.waypoint_degree);
  for (size_t i = 0; i < net.nodes.size(); ++i) {
    // Indices of the `degree` nearest other nodes.
    std::vector<int> order;
    order.reserve(net.nodes.size() - 1);
    for (size_t j = 0; j < net.nodes.size(); ++j) {
      if (j != i) order.push_back(static_cast<int>(j));
    }
    std::partial_sort(order.begin(),
                      order.begin() + std::min<size_t>(order.size(),
                                                       static_cast<size_t>(degree)),
                      order.end(), [&](int a, int b) {
                        return (net.nodes[static_cast<size_t>(a)] -
                                net.nodes[i]).Norm2() <
                               (net.nodes[static_cast<size_t>(b)] -
                                net.nodes[i]).Norm2();
                      });
    for (int k = 0; k < degree && k < static_cast<int>(order.size()); ++k) {
      const int j = order[static_cast<size_t>(k)];
      auto& ai = net.adjacency[i];
      auto& aj = net.adjacency[static_cast<size_t>(j)];
      if (std::find(ai.begin(), ai.end(), j) == ai.end()) ai.push_back(j);
      if (std::find(aj.begin(), aj.end(), static_cast<int>(i)) == aj.end()) {
        aj.push_back(static_cast<int>(i));
      }
    }
  }
  return net;
}

// Continuous movement state of one truck along the network.
class TruckMotion {
 public:
  TruckMotion(const RoadNetwork* net, int start_node, double cruise_speed,
              const TrucksOptions* options, Rng* rng)
      : net_(net),
        options_(options),
        rng_(rng),
        node_(start_node),
        position_(net->nodes[static_cast<size_t>(start_node)]),
        cruise_(cruise_speed) {
    PickNextLeg();
  }

  Vec2 position() const { return position_; }

  /// Advances the simulated motion by `dt` seconds.
  void Advance(double dt) {
    while (dt > 0.0) {
      if (dwell_remaining_ > 0.0) {
        const double used = std::min(dt, dwell_remaining_);
        dwell_remaining_ -= used;
        dt -= used;
        continue;
      }
      const Vec2 target = net_->nodes[static_cast<size_t>(target_node_)];
      const double dist = Distance(position_, target);
      const double needed = dist / leg_speed_;
      if (dt < needed) {
        position_ = position_ + (target - position_) * (dt * leg_speed_ / dist);
        return;
      }
      // Arrive at the target waypoint.
      position_ = target;
      dt -= needed;
      node_ = target_node_;
      if (rng_->Bernoulli(options_->dwell_prob)) {
        // Exponential dwell with the configured mean.
        double u = rng_->NextDouble();
        if (u <= 1e-12) u = 1e-12;
        dwell_remaining_ = -std::log(u) * options_->mean_dwell;
      }
      PickNextLeg();
    }
  }

 private:
  void PickNextLeg() {
    const auto& nbrs = net_->adjacency[static_cast<size_t>(node_)];
    MST_CHECK(!nbrs.empty());
    int next = nbrs[rng_->UniformIndex(nbrs.size())];
    // Avoid immediate backtracking when there is a choice.
    if (next == prev_node_ && nbrs.size() > 1) {
      for (int tries = 0; tries < 4 && next == prev_node_; ++tries) {
        next = nbrs[rng_->UniformIndex(nbrs.size())];
      }
    }
    prev_node_ = node_;
    target_node_ = next;
    leg_speed_ = cruise_ * rng_->Uniform(0.8, 1.2);
  }

  const RoadNetwork* net_;
  const TrucksOptions* options_;
  Rng* rng_;
  int node_;
  int prev_node_ = -1;
  int target_node_ = -1;
  Vec2 position_;
  double cruise_;
  double leg_speed_ = 1.0;
  double dwell_remaining_ = 0.0;
};

}  // namespace

TrajectoryStore GenerateTrucks(const TrucksOptions& options) {
  MST_CHECK(options.num_trucks >= 1);
  MST_CHECK(options.mean_samples_per_truck >= 4);
  MST_CHECK(options.num_waypoints >= 2);
  MST_CHECK(options.num_depots >= 1 &&
            options.num_depots <= options.num_waypoints);

  Rng master(options.seed);
  Rng net_rng = master.Fork(0xdeadULL);
  const RoadNetwork net = BuildNetwork(options, &net_rng);

  TrajectoryStore store;
  for (int truck = 0; truck < options.num_trucks; ++truck) {
    Rng rng = master.Fork(static_cast<uint64_t>(truck) + 1);

    const int span = options.mean_samples_per_truck * 3 / 10;
    const int samples_n = static_cast<int>(rng.UniformInt(
        options.mean_samples_per_truck - span,
        options.mean_samples_per_truck + span));
    const double dt = options.day_seconds / (samples_n - 1);

    // Depots are the first `num_depots` waypoints.
    const int depot =
        static_cast<int>(rng.UniformIndex(static_cast<uint64_t>(
            options.num_depots)));
    const double cruise =
        options.mean_speed * std::exp(rng.Normal(0.0, 0.25));

    TruckMotion motion(&net, depot, cruise, &options, &rng);
    std::vector<TPoint> samples;
    samples.reserve(static_cast<size_t>(samples_n));
    double now = 0.0;
    samples.push_back({now, motion.position()});
    for (int i = 1; i < samples_n; ++i) {
      // Mild per-sample interval jitter keeps GPS-like irregularity while
      // pinning the final timestamp to the end of the day.
      double step = dt;
      if (i < samples_n - 1) {
        step *= rng.Uniform(0.85, 1.15);
      } else {
        step = options.day_seconds - now;
      }
      if (step <= 0.0) step = std::nextafter(0.0, 1.0);
      motion.Advance(step);
      now += step;
      if (i == samples_n - 1) now = options.day_seconds;
      if (now <= samples.back().t) now = std::nextafter(samples.back().t, 1e300);
      samples.push_back({now, motion.position()});
    }
    store.Add(Trajectory(options.first_id + truck, std::move(samples)));
  }
  return store;
}

}  // namespace mst
