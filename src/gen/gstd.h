// GSTD-style synthetic trajectory generator (Theodoridis, Silva, Nascimento
// — the paper's ref [17]). Reproduces the parameter surface §5.1 reports in
// Table 2: N objects sampled ~2000 times over a unit space/time domain,
// uniform initial placement, random headings, speed from a normal or
// lognormal distribution.

#ifndef MST_GEN_GSTD_H_
#define MST_GEN_GSTD_H_

#include <cstdint>

#include "src/geom/trajectory.h"

namespace mst {

/// Generator parameters. Defaults produce the paper's S-series datasets
/// (modulo object count): lognormal(1, 0.6) speeds, unit domains.
struct GstdOptions {
  enum class InitialDistribution { kUniform, kGaussian };
  enum class SpeedDistribution { kNormal, kLogNormal };
  enum class Boundary { kBounce, kWrap };

  int num_objects = 100;
  int samples_per_object = 2000;
  /// Trajectories span [time_begin, time_end]; samples are equally spaced
  /// (with optional jitter), so every object covers the full window — the
  /// setting Definition 1 assumes.
  double time_begin = 0.0;
  double time_end = 1.0;
  InitialDistribution initial = InitialDistribution::kUniform;
  SpeedDistribution speed = SpeedDistribution::kLogNormal;
  /// Mean (normal) or μ of the underlying normal (lognormal).
  double speed_param1 = 1.0;
  /// Std-dev (normal) or σ (lognormal); Table 2 uses σ = 0.6.
  double speed_param2 = 0.6;
  /// Multiplies drawn speeds into space units per time unit.
  double speed_scale = 1.0;
  /// Probability per step of drawing a fresh random heading.
  double heading_change_prob = 0.15;
  /// Max per-step heading jitter (radians) when the heading is kept.
  double heading_jitter = 0.25;
  Boundary boundary = Boundary::kBounce;
  /// Fractional jitter of sample spacing (0 = perfectly regular sampling,
  /// 0.4 = spacing varies ±40 %); first/last timestamps stay pinned.
  double timestamp_jitter = 0.0;
  uint64_t seed = 42;
  /// Id assigned to the first object; ids are consecutive.
  TrajectoryId first_id = 0;
};

/// Generates `options.num_objects` trajectories. Deterministic in the seed.
TrajectoryStore GenerateGstd(const GstdOptions& options);

}  // namespace mst

#endif  // MST_GEN_GSTD_H_
