// "Trucks"-like fleet generator — the substitute for the real Trucks dataset
// of rtreeportal.org the paper uses (273 trucks, 112 203 segments around
// Athens), which is not obtainable offline. See DESIGN.md for the
// substitution argument.
//
// A deterministic simulator: a random waypoint "road skeleton" is drawn in a
// metric plane; each truck belongs to a depot and alternates trips along
// road edges with dwell periods; per-truck cruise speeds and GPS sampling
// intervals are heterogeneous, so the dataset exhibits exactly the
// sampling-rate variety the DISSIM metric is designed to handle. Every
// trajectory spans the same working-day window, matching the assumption of
// Definition 1.

#ifndef MST_GEN_TRUCKS_H_
#define MST_GEN_TRUCKS_H_

#include <cstdint>

#include "src/geom/trajectory.h"

namespace mst {

/// Fleet parameters. Defaults match the real dataset's cardinalities:
/// 273 trajectories and ≈112 K segments (≈411 samples per truck).
struct TrucksOptions {
  int num_trucks = 273;
  /// Mean samples per truck; per-truck counts vary ±30 %.
  int mean_samples_per_truck = 412;
  /// Working day duration (seconds); all trajectories span [0, day].
  double day_seconds = 28800.0;
  /// Side of the square operating area (meters).
  double area_meters = 40000.0;
  int num_depots = 6;
  int num_waypoints = 80;
  /// Road edges per waypoint (nearest-neighbour connections).
  int waypoint_degree = 3;
  /// Mean cruise speed (m/s); per-truck speeds are lognormal around this.
  double mean_speed = 11.0;
  /// Probability of dwelling (stopping) at a reached waypoint.
  double dwell_prob = 0.35;
  /// Mean dwell duration (seconds).
  double mean_dwell = 420.0;
  uint64_t seed = 7;
  TrajectoryId first_id = 0;
};

/// Generates the fleet. Deterministic in the seed.
TrajectoryStore GenerateTrucks(const TrucksOptions& options);

}  // namespace mst

#endif  // MST_GEN_TRUCKS_H_
