#include "src/query/selectivity.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mst {
namespace {

// Per-bin overlap of [lo, hi] with the equi-width bins of domain axis
// [dlo, dhi]: calls fn(bin, overlap_length) for each overlapped bin; for a
// degenerate interval (lo == hi) inside the domain, one call with length 0.
template <typename Fn>
void ForEachBin(double lo, double hi, double dlo, double dhi, int bins,
                Fn fn) {
  lo = std::max(lo, dlo);
  hi = std::min(hi, dhi);
  if (lo > hi) return;
  const double width = (dhi - dlo) / bins;
  if (width <= 0.0) {
    fn(0, 0.0);
    return;
  }
  int first = static_cast<int>((lo - dlo) / width);
  int last = static_cast<int>((hi - dlo) / width);
  first = std::clamp(first, 0, bins - 1);
  last = std::clamp(last, 0, bins - 1);
  for (int b = first; b <= last; ++b) {
    const double cell_lo = dlo + b * width;
    const double cell_hi = cell_lo + width;
    const double overlap = std::min(hi, cell_hi) - std::max(lo, cell_lo);
    fn(b, std::max(0.0, overlap));
  }
}

// Fraction helper: overlap/extent with degenerate intervals counting fully.
double Frac(double overlap, double extent) {
  if (extent <= 0.0) return 1.0;
  return std::clamp(overlap / extent, 0.0, 1.0);
}

}  // namespace

SelectivityEstimator::SelectivityEstimator(const Options& options,
                                           const Mbb3& domain)
    : options_(options), domain_(domain) {
  MST_CHECK(options.bins_x >= 1 && options.bins_y >= 1 && options.bins_t >= 1);
  cells_.assign(static_cast<size_t>(options.bins_x) *
                    static_cast<size_t>(options.bins_y) *
                    static_cast<size_t>(options.bins_t),
                0.0);
}

size_t SelectivityEstimator::CellIndex(int ix, int iy, int it) const {
  return (static_cast<size_t>(it) * static_cast<size_t>(options_.bins_y) +
          static_cast<size_t>(iy)) *
             static_cast<size_t>(options_.bins_x) +
         static_cast<size_t>(ix);
}

SelectivityEstimator SelectivityEstimator::Build(const TrajectoryStore& store,
                                                 const Options& options) {
  Mbb3 domain;
  for (const Trajectory& t : store.trajectories()) {
    domain.Expand(t.Bounds());
  }
  SelectivityEstimator est(options, domain);
  if (domain.IsEmpty()) return est;

  for (const Trajectory& t : store.trajectories()) {
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      const Mbb3 box = Mbb3::OfSegment(t.sample(i), t.sample(i + 1));
      // Spread one unit of mass proportionally to per-axis overlap
      // fractions of the segment's MBB.
      ForEachBin(box.xlo, box.xhi, domain.xlo, domain.xhi, options.bins_x,
                 [&](int ix, double ox) {
        const double fx = Frac(ox, box.xhi - box.xlo);
        ForEachBin(box.ylo, box.yhi, domain.ylo, domain.yhi, options.bins_y,
                   [&](int iy, double oy) {
          const double fy = Frac(oy, box.yhi - box.ylo);
          ForEachBin(box.tlo, box.thi, domain.tlo, domain.thi,
                     options.bins_t, [&](int it, double ot) {
            const double ft = Frac(ot, box.thi - box.tlo);
            est.cells_[est.CellIndex(ix, iy, it)] += fx * fy * ft;
          });
        });
      });
      est.total_ += 1.0;
    }
  }
  return est;
}

double SelectivityEstimator::EstimateRangeCount(const Mbb3& window) const {
  if (domain_.IsEmpty() || window.IsEmpty()) return 0.0;
  if (!domain_.Intersects(window)) return 0.0;
  const double wx = (domain_.xhi - domain_.xlo) / options_.bins_x;
  const double wy = (domain_.yhi - domain_.ylo) / options_.bins_y;
  const double wt = (domain_.thi - domain_.tlo) / options_.bins_t;
  double sum = 0.0;
  ForEachBin(window.xlo, window.xhi, domain_.xlo, domain_.xhi,
             options_.bins_x, [&](int ix, double ox) {
    const double fx = Frac(ox, wx);
    ForEachBin(window.ylo, window.yhi, domain_.ylo, domain_.yhi,
               options_.bins_y, [&](int iy, double oy) {
      const double fy = Frac(oy, wy);
      ForEachBin(window.tlo, window.thi, domain_.tlo, domain_.thi,
                 options_.bins_t, [&](int it, double ot) {
        const double ft = Frac(ot, wt);
        sum += cells_[CellIndex(ix, iy, it)] * fx * fy * ft;
      });
    });
  });
  return sum;
}

double SelectivityEstimator::EstimateRangeSelectivity(
    const Mbb3& window) const {
  return total_ > 0.0 ? EstimateRangeCount(window) / total_ : 0.0;
}

}  // namespace mst
