// Historical Continuous Nearest Neighbour search (the paper's ref [6],
// Frentzos/Gratsias/Pelekis/Theodoridis): given a moving query and a time
// period, report WHICH trajectory is nearest during WHICH sub-interval —
// the piecewise lower envelope of the candidates' distance-in-time
// functions. This is the query whose MINDIST machinery the MST paper
// adopts; implementing it completes the substrate.
//
// Algorithm: (1) seed an upper bound with the k nearest trajectories by
// minimum distance, (2) gather every trajectory that dips below the seed
// envelope's maximum via a MINDIST-pruned traversal, (3) compute the exact
// lower envelope across elementary intervals (merged sample timestamps),
// where each candidate's squared distance is a quadratic and envelope
// breakpoints are quadratic-equality roots.

#ifndef MST_QUERY_CNN_H_
#define MST_QUERY_CNN_H_

#include <vector>

#include "src/geom/interval.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"

namespace mst {

/// One piece of a continuous-NN answer: `id` is the nearest trajectory
/// throughout `interval`; `dist_begin`/`dist_end` are the distances at the
/// piece boundaries.
struct CnnPiece {
  TimeInterval interval;
  TrajectoryId id = kInvalidTrajectoryId;
  double dist_begin = 0.0;
  double dist_end = 0.0;
};

/// Continuous NN of `query` over `period`. Pieces are returned in temporal
/// order, cover the period exactly, and adjacent pieces have distinct ids.
/// Only trajectories covering the whole period are eligible (consistent
/// with the MST search; see DESIGN.md). The query must cover the period
/// (checked). Returns an empty vector when no trajectory is eligible.
std::vector<CnnPiece> ContinuousNearestNeighbor(const TrajectoryIndex& index,
                                                const TrajectoryStore& store,
                                                const Trajectory& query,
                                                const TimeInterval& period);

/// Exact lower-envelope computation over an explicit candidate set
/// (exposed for testing and for store-only use without an index).
std::vector<CnnPiece> ComputeNnEnvelope(
    const TrajectoryStore& store, const std::vector<TrajectoryId>& candidates,
    const Trajectory& query, const TimeInterval& period);

}  // namespace mst

#endif  // MST_QUERY_CNN_H_
