// Classical k-nearest-neighbour queries over trajectory indexes, following
// the historical-NN formulation of the paper's ref [6] (Frentzos et al.,
// "Algorithms for Nearest Neighbor Search on Moving Object Trajectories"):
// the distance of a data trajectory is its *minimum* distance from the
// query (point or trajectory) over the query period; search proceeds
// best-first over node MINDISTs (Hjaltason–Samet).

#ifndef MST_QUERY_NN_H_
#define MST_QUERY_NN_H_

#include <vector>

#include "src/geom/interval.h"
#include "src/geom/point.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"

namespace mst {

/// One nearest-neighbour answer: the trajectory and its minimum distance
/// from the query during the query period.
struct NnResult {
  TrajectoryId id = kInvalidTrajectoryId;
  double distance = 0.0;
};

/// k trajectories coming nearest to the static `point` at any instant of
/// `period`, ascending by distance (ties by id). Exact. `k >= 1` (checked);
/// fewer results when fewer trajectories touch the period.
std::vector<NnResult> PointKnn(const TrajectoryIndex& index, Vec2 point,
                               const TimeInterval& period, int k);

/// k trajectories coming nearest to the moving `query` during `period`
/// (distance measured between time-synchronized positions, the historical
/// continuous NN of [6] collapsed to its minimum). The query must cover the
/// period (checked). Exact; ascending by distance.
std::vector<NnResult> TrajectoryKnn(const TrajectoryIndex& index,
                                    const Trajectory& query,
                                    const TimeInterval& period, int k);

}  // namespace mst

#endif  // MST_QUERY_NN_H_
