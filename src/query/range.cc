#include "src/query/range.h"

#include <algorithm>

#include "src/util/check.h"

namespace mst {
namespace {

// True iff position `p` lies in the window's spatial footprint.
bool InsideSpatial(const Mbb3& window, Vec2 p) {
  return p.x >= window.xlo && p.x <= window.xhi && p.y >= window.ylo &&
         p.y <= window.yhi;
}

}  // namespace

std::vector<LeafEntry> RangeSegments(const TrajectoryIndex& index,
                                     const Mbb3& window) {
  std::vector<LeafEntry> out;
  if (index.empty()) return out;
  std::vector<PageId> stack = {index.root()};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    const NodeRef node = index.ReadNode(page);
    if (node->IsLeaf()) {
      for (const LeafEntry& e : node->leaves) {
        if (e.Bounds().Intersects(window)) out.push_back(e);
      }
      continue;
    }
    for (const InternalEntry& e : node->internals) {
      if (e.mbb.Intersects(window)) stack.push_back(e.child);
    }
  }
  return out;
}

std::vector<TrajectoryId> RangeTrajectories(const TrajectoryIndex& index,
                                            const Mbb3& window) {
  std::vector<TrajectoryId> ids;
  for (const LeafEntry& e : RangeSegments(index, window)) {
    ids.push_back(e.traj_id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<TrajectoryId> RangeTopological(const TrajectoryIndex& index,
                                           const TrajectoryStore& store,
                                           const Mbb3& window,
                                           RangeRelation relation) {
  const std::vector<TrajectoryId> candidates =
      RangeTrajectories(index, window);
  if (relation == RangeRelation::kIntersects) return candidates;

  std::vector<TrajectoryId> out;
  for (const TrajectoryId id : candidates) {
    const Trajectory* t = store.Find(id);
    if (t == nullptr) continue;
    const std::optional<Vec2> at_begin = t->PositionAt(window.tlo);
    const std::optional<Vec2> at_end = t->PositionAt(window.thi);
    if (!at_begin.has_value() || !at_end.has_value()) continue;
    const bool in_begin = InsideSpatial(window, *at_begin);
    const bool in_end = InsideSpatial(window, *at_end);
    const bool keep = relation == RangeRelation::kLeaves
                          ? (in_begin && !in_end)
                          : (!in_begin && in_end);
    if (keep) out.push_back(id);
  }
  return out;
}

}  // namespace mst
