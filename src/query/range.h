// Classical spatiotemporal range (window) queries over the R-tree-family
// trajectory indexes. The paper's pitch is that one general-purpose index
// serves range, topological, nearest-neighbour AND most-similar-trajectory
// queries (§1); this module supplies the classical side.

#ifndef MST_QUERY_RANGE_H_
#define MST_QUERY_RANGE_H_

#include <vector>

#include "src/geom/mbb.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"

namespace mst {

/// How a trajectory relates to a spatiotemporal window — the topological
/// predicates of range search over movement data.
enum class RangeRelation {
  /// At least one sampled segment's MBB intersects the window.
  kIntersects,
  /// The object is inside the spatial box at the window's start time and
  /// outside at its end time (it left the region during the window).
  kLeaves,
  /// Outside at the start, inside at the end (it entered the region).
  kEnters,
};

/// All index segments whose MBB intersects `window`, in unspecified order.
std::vector<LeafEntry> RangeSegments(const TrajectoryIndex& index,
                                     const Mbb3& window);

/// Distinct ids of trajectories with at least one segment intersecting
/// `window`, ascending.
std::vector<TrajectoryId> RangeTrajectories(const TrajectoryIndex& index,
                                            const Mbb3& window);

/// Trajectories satisfying the topological `relation` against `window`.
/// `store` supplies exact interpolated positions for the enters/leaves
/// predicates (candidates are found through the index; the refinement step
/// evaluates positions at the window's boundary instants). Ascending ids.
std::vector<TrajectoryId> RangeTopological(const TrajectoryIndex& index,
                                           const TrajectoryStore& store,
                                           const Mbb3& window,
                                           RangeRelation relation);

}  // namespace mst

#endif  // MST_QUERY_RANGE_H_
