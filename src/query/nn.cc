#include "src/query/nn.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "src/geom/mindist.h"
#include "src/geom/moving_distance.h"
#include "src/util/check.h"

namespace mst {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double mindist;
  PageId page;
  bool operator>(const QueueEntry& o) const {
    if (mindist != o.mindist) return mindist > o.mindist;
    return page > o.page;
  }
};

// Tracks each candidate's best (smallest) distance so far and answers
// "current kth-best distinct distance" queries.
class BestDistances {
 public:
  explicit BestDistances(int k) : k_(k) {}

  void Offer(TrajectoryId id, double distance) {
    const auto it = best_.find(id);
    if (it == best_.end()) {
      best_[id] = distance;
      ordered_.insert({distance, id});
      return;
    }
    if (distance >= it->second) return;
    ordered_.erase(ordered_.find({it->second, id}));
    it->second = distance;
    ordered_.insert({distance, id});
  }

  double KthValue() const {
    if (static_cast<int>(ordered_.size()) < k_) return kInf;
    auto it = ordered_.begin();
    std::advance(it, k_ - 1);
    return it->first;
  }

  std::vector<NnResult> TopK() const {
    std::vector<NnResult> out;
    for (const auto& [dist, id] : ordered_) {
      if (static_cast<int>(out.size()) == k_) break;
      out.push_back({id, dist});
    }
    return out;
  }

 private:
  int k_;
  std::map<TrajectoryId, double> best_;
  std::set<std::pair<double, TrajectoryId>> ordered_;
};

// Minimum distance between the (possibly moving) query and one indexed
// segment over window = period ∩ segment span (∩ query lifespan for moving
// queries). Returns +inf when the window is empty.
template <typename SegmentDistanceFn, typename NodeDistanceFn>
std::vector<NnResult> BestFirstKnn(const TrajectoryIndex& index, int k,
                                   SegmentDistanceFn segment_distance,
                                   NodeDistanceFn node_distance) {
  MST_CHECK(k >= 1);
  BestDistances best(k);
  if (index.empty()) return best.TopK();

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push({0.0, index.root()});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.mindist >= best.KthValue()) break;  // exact termination
    const NodeRef node = index.ReadNode(top.page);
    if (node->IsLeaf()) {
      for (const LeafEntry& e : node->leaves) {
        const double d = segment_distance(e);
        if (d < kInf) best.Offer(e.traj_id, d);
      }
      continue;
    }
    for (const InternalEntry& e : node->internals) {
      const double d = node_distance(e.mbb);
      if (d < kInf && d < best.KthValue()) queue.push({d, e.child});
    }
  }
  return best.TopK();
}

}  // namespace

std::vector<NnResult> PointKnn(const TrajectoryIndex& index, Vec2 point,
                               const TimeInterval& period, int k) {
  MST_CHECK(!period.IsEmpty());
  const auto segment_distance = [&](const LeafEntry& e) -> double {
    const TimeInterval window = period.Intersect(e.TimeSpan());
    if (window.IsEmpty()) return kInf;
    const TPoint a = e.Start();
    const TPoint b = e.End();
    if (window.Duration() == 0.0) {
      return Distance(point, Lerp(a, b, window.begin));
    }
    const DistanceTrinomial tri = DistanceTrinomial::Between(
        point, point, Lerp(a, b, window.begin), Lerp(a, b, window.end),
        window.Duration());
    return tri.MinValue();
  };
  const auto node_distance = [&](const Mbb3& box) -> double {
    if (!box.TimeExtent().Overlaps(period)) return kInf;
    return PointRectDistance(point, box.xlo, box.ylo, box.xhi, box.yhi);
  };
  return BestFirstKnn(index, k, segment_distance, node_distance);
}

std::vector<NnResult> TrajectoryKnn(const TrajectoryIndex& index,
                                    const Trajectory& query,
                                    const TimeInterval& period, int k) {
  MST_CHECK(!period.IsEmpty());
  MST_CHECK_MSG(query.Covers(period),
                "query trajectory must cover the query period");
  const auto segment_distance = [&](const LeafEntry& e) -> double {
    const TimeInterval window = period.Intersect(e.TimeSpan());
    if (window.IsEmpty()) return kInf;
    const TPoint a = e.Start();
    const TPoint b = e.End();
    if (window.Duration() == 0.0) {
      return Distance(*query.PositionAt(window.begin),
                      Lerp(a, b, window.begin));
    }
    // Merge the query's sample instants inside the window; minimize the
    // trinomial on every elementary interval.
    double best = kInf;
    double t_prev = window.begin;
    Vec2 q_prev = *query.PositionAt(t_prev);
    Vec2 e_prev = Lerp(a, b, t_prev);
    auto advance = [&](double t_next) {
      if (t_next <= t_prev) return;
      const Vec2 q_next = *query.PositionAt(t_next);
      const Vec2 e_next = Lerp(a, b, t_next);
      const DistanceTrinomial tri = DistanceTrinomial::Between(
          q_prev, q_next, e_prev, e_next, t_next - t_prev);
      best = std::min(best, tri.MinValue());
      t_prev = t_next;
      q_prev = q_next;
      e_prev = e_next;
    };
    for (const TPoint& s : query.samples()) {
      if (s.t > window.begin && s.t < window.end) advance(s.t);
    }
    advance(window.end);
    return best;
  };
  const auto node_distance = [&](const Mbb3& box) -> double {
    return MinDist(query, box, period);
  };
  return BestFirstKnn(index, k, segment_distance, node_distance);
}

}  // namespace mst
