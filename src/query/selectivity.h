// Selectivity estimation for spatiotemporal range queries — the paper's
// second future-work direction (§6, building on Tao/Sun/Papadias [18]): a
// query optimizer choosing between index-based MST search, range filtering,
// and linear scan needs cheap cardinality estimates.
//
// The estimator is a 3D (x, y, t) equi-width histogram over segment MBBs:
// each segment spreads one unit of mass over the cells its MBB overlaps,
// proportionally to the overlap volume; a range estimate sums, per cell,
// the stored mass scaled by the cell/window overlap fraction (uniformity
// assumption within cells).

#ifndef MST_QUERY_SELECTIVITY_H_
#define MST_QUERY_SELECTIVITY_H_

#include <cstdint>
#include <vector>

#include "src/geom/mbb.h"
#include "src/geom/trajectory.h"

namespace mst {

/// Histogram-based range-count estimator.
class SelectivityEstimator {
 public:
  struct Options {
    int bins_x = 32;
    int bins_y = 32;
    int bins_t = 32;
  };

  /// Builds the histogram over every segment of every trajectory. The
  /// histogram domain is the dataset's bounding box.
  static SelectivityEstimator Build(const TrajectoryStore& store,
                                    const Options& options);
  static SelectivityEstimator Build(const TrajectoryStore& store) {
    return Build(store, Options());
  }

  /// Estimated number of segments whose MBB intersects `window`.
  double EstimateRangeCount(const Mbb3& window) const;

  /// EstimateRangeCount normalized by the total segment count (0 when the
  /// dataset is empty).
  double EstimateRangeSelectivity(const Mbb3& window) const;

  /// Total mass (== number of indexed segments).
  double total() const { return total_; }

  /// Histogram domain.
  const Mbb3& domain() const { return domain_; }

 private:
  SelectivityEstimator(const Options& options, const Mbb3& domain);

  size_t CellIndex(int ix, int iy, int it) const;

  Options options_;
  Mbb3 domain_;
  std::vector<double> cells_;
  double total_ = 0.0;
};

}  // namespace mst

#endif  // MST_QUERY_SELECTIVITY_H_
