#include "src/query/cnn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/geom/mindist.h"
#include "src/geom/moving_distance.h"
#include "src/query/nn.h"
#include "src/util/check.h"

namespace mst {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Roots of A τ² + B τ + C = 0 inside (lo, hi], ascending.
void RootsInRange(double a, double b, double c, double lo, double hi,
                  std::vector<double>* out) {
  auto add = [&](double r) {
    if (r > lo && r <= hi) out->push_back(r);
  };
  if (a == 0.0) {
    if (b != 0.0) add(-c / b);
    return;
  }
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return;
  const double sq = std::sqrt(disc);
  // Numerically stable pair.
  const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
  add(q / a);
  if (q != 0.0) add(c / q);
  std::sort(out->begin(), out->end());
}

// Per-candidate squared-distance quadratic on one elementary interval,
// in local time τ ∈ [0, dur].
struct CandidateQuad {
  TrajectoryId id;
  DistanceTrinomial tri;
};

// Lower-envelope sweep over one elementary interval. Appends pieces (in
// global time) to `out`, merging with the previous piece when the winner
// repeats.
void SweepInterval(const std::vector<CandidateQuad>& quads, double t0,
                   double dur, std::vector<CnnPiece>* out) {
  MST_DCHECK(!quads.empty());
  const double eps = std::max(1e-12, 1e-9 * dur);

  auto winner_at = [&](double tau) {
    size_t best = 0;
    double best_v = kInf;
    for (size_t i = 0; i < quads.size(); ++i) {
      const double v = quads[i].tri.SquaredAt(tau);
      if (v < best_v ||
          (v == best_v && quads[i].id < quads[best].id)) {
        best_v = v;
        best = i;
      }
    }
    return best;
  };

  double tau = 0.0;
  size_t winner = winner_at(std::min(eps, dur * 0.5));
  int guard = static_cast<int>(quads.size() * quads.size()) * 4 + 16;
  while (tau < dur && guard-- > 0) {
    // Earliest instant where some challenger crosses below the winner.
    double cross = dur;
    const DistanceTrinomial& w = quads[winner].tri;
    for (size_t j = 0; j < quads.size(); ++j) {
      if (j == winner) continue;
      const DistanceTrinomial& o = quads[j].tri;
      std::vector<double> roots;
      RootsInRange(w.a - o.a, w.b - o.b, w.c - o.c, tau + eps, dur, &roots);
      for (const double r : roots) {
        if (r >= cross) break;
        // Challenger must actually be below just after the root.
        const double probe = std::min(dur, r + eps);
        if (o.SquaredAt(probe) < w.SquaredAt(probe)) {
          cross = r;
          break;
        }
      }
    }

    const double piece_end = cross;
    const double d_begin = quads[winner].tri.ValueAt(tau);
    const double d_end = quads[winner].tri.ValueAt(piece_end);
    const TrajectoryId id = quads[winner].id;
    if (!out->empty() && out->back().id == id &&
        std::abs(out->back().interval.end - (t0 + tau)) <= eps) {
      out->back().interval.end = t0 + piece_end;
      out->back().dist_end = d_end;
    } else {
      out->push_back({{t0 + tau, t0 + piece_end}, id, d_begin, d_end});
    }
    if (piece_end >= dur) break;
    tau = piece_end;
    winner = winner_at(std::min(dur, tau + eps));
  }
}

}  // namespace

std::vector<CnnPiece> ComputeNnEnvelope(
    const TrajectoryStore& store, const std::vector<TrajectoryId>& candidates,
    const Trajectory& query, const TimeInterval& period) {
  MST_CHECK(query.Covers(period));
  std::vector<CnnPiece> out;
  if (candidates.empty() || period.Duration() <= 0.0) return out;

  std::vector<const Trajectory*> trajs;
  trajs.reserve(candidates.size());
  for (const TrajectoryId id : candidates) {
    const Trajectory* t = store.Find(id);
    MST_CHECK_MSG(t != nullptr, "unknown CNN candidate id");
    MST_CHECK_MSG(t->Covers(period), "CNN candidate must cover the period");
    trajs.push_back(t);
  }

  // Elementary intervals: merged sample instants of query and candidates.
  std::vector<double> cuts;
  cuts.push_back(period.begin);
  auto add_samples = [&](const Trajectory& t) {
    for (const TPoint& s : t.samples()) {
      if (s.t > period.begin && s.t < period.end) cuts.push_back(s.t);
    }
  };
  add_samples(query);
  for (const Trajectory* t : trajs) add_samples(*t);
  cuts.push_back(period.end);
  std::sort(cuts.begin(), cuts.end());

  std::vector<Vec2> prev_pos(trajs.size());
  Vec2 q_prev = *query.PositionAt(cuts.front());
  for (size_t i = 0; i < trajs.size(); ++i) {
    prev_pos[i] = *trajs[i]->PositionAt(cuts.front());
  }
  std::vector<CandidateQuad> quads(trajs.size());

  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    const double t0 = cuts[c];
    const double t1 = cuts[c + 1];
    if (t1 <= t0) continue;
    const double dur = t1 - t0;
    const Vec2 q_next = *query.PositionAt(t1);
    for (size_t i = 0; i < trajs.size(); ++i) {
      const Vec2 next = *trajs[i]->PositionAt(t1);
      quads[i].id = trajs[i]->id();
      quads[i].tri = DistanceTrinomial::Between(q_prev, q_next, prev_pos[i],
                                                next, dur);
      prev_pos[i] = next;
    }
    q_prev = q_next;
    SweepInterval(quads, t0, dur, &out);
  }
  return out;
}

std::vector<CnnPiece> ContinuousNearestNeighbor(const TrajectoryIndex& index,
                                                const TrajectoryStore& store,
                                                const Trajectory& query,
                                                const TimeInterval& period) {
  MST_CHECK(query.Covers(period));
  MST_CHECK(period.Duration() > 0.0);
  std::vector<CnnPiece> out;
  if (index.empty()) return out;

  // Phase 1: seed candidates — the few nearest-by-minimum trajectories.
  std::vector<TrajectoryId> seeds;
  for (const NnResult& r : TrajectoryKnn(index, query, period, 4)) {
    if (const Trajectory* t = store.Find(r.id);
        t != nullptr && t->Covers(period)) {
      seeds.push_back(r.id);
    }
  }
  if (seeds.empty()) return out;
  const std::vector<CnnPiece> seed_env =
      ComputeNnEnvelope(store, seeds, query, period);
  double umax = 0.0;
  for (const CnnPiece& p : seed_env) {
    umax = std::max({umax, p.dist_begin, p.dist_end});
  }

  // Phase 2: any trajectory dipping below umax at some instant could own a
  // piece; gather them with a MINDIST-pruned traversal.
  std::vector<TrajectoryId> candidates = seeds;
  std::vector<PageId> stack = {index.root()};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    const NodeRef node = index.ReadNode(page);
    if (node->IsLeaf()) {
      for (const LeafEntry& e : node->leaves) {
        const TimeInterval window = period.Intersect(e.TimeSpan());
        if (window.Duration() <= 0.0) continue;
        if (MinDist(query, e.Bounds(), period) > umax) continue;
        candidates.push_back(e.traj_id);
      }
      continue;
    }
    for (const InternalEntry& e : node->internals) {
      if (MinDist(query, e.mbb, period) <= umax) stack.push_back(e.child);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Eligibility filter.
  std::vector<TrajectoryId> eligible;
  for (const TrajectoryId id : candidates) {
    if (const Trajectory* t = store.Find(id);
        t != nullptr && t->Covers(period)) {
      eligible.push_back(id);
    }
  }
  return ComputeNnEnvelope(store, eligible, query, period);
}

}  // namespace mst
