// Plain-text table rendering for the benchmark harness. Every bench binary
// prints the rows/series of the paper table or figure it reproduces through
// this printer so the outputs are uniform and diff-friendly.

#ifndef MST_UTIL_TABLE_H_
#define MST_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace mst {

/// Column-aligned text table. Collect a header and rows of cells, then
/// Print() to stdout (or Render() to a string).
class TextTable {
 public:
  /// Sets the header row (column titles).
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string Fmt(double v, int decimals = 2);
  static std::string FmtInt(long long v);
  static std::string FmtPct(double fraction, int decimals = 1);

  /// Renders the table with a separator line under the header.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

  /// Renders as CSV (header + rows; cells containing commas or quotes are
  /// quoted). For machine-readable bench output.
  std::string RenderCsv() const;

  /// Writes RenderCsv() to `path`; false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mst

#endif  // MST_UTIL_TABLE_H_
