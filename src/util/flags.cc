#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mst {
namespace {

// Formats a double without trailing zeros for the usage text.
std::string DoubleRepr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

void FlagParser::AddBool(const std::string& name, bool* value,
                         const std::string& help) {
  flags_.push_back({name, Type::kBool, value, help, *value ? "true" : "false"});
}

void FlagParser::AddInt(const std::string& name, int64_t* value,
                        const std::string& help) {
  flags_.push_back({name, Type::kInt, value, help, std::to_string(*value)});
}

void FlagParser::AddDouble(const std::string& name, double* value,
                           const std::string& help) {
  flags_.push_back({name, Type::kDouble, value, help, DoubleRepr(*value)});
}

void FlagParser::AddString(const std::string& name, std::string* value,
                           const std::string& help) {
  flags_.push_back({name, Type::kString, value, help, *value});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool FlagParser::Assign(const Flag& flag, const std::string& value_text) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kBool: {
      bool* target = static_cast<bool*>(flag.target);
      if (value_text.empty() || value_text == "true" || value_text == "1") {
        *target = true;
      } else if (value_text == "false" || value_text == "0") {
        *target = false;
      } else {
        std::fprintf(stderr, "flag --%s: expected boolean, got '%s'\n",
                     flag.name.c_str(), value_text.c_str());
        return false;
      }
      return true;
    }
    case Type::kInt: {
      const long long v = std::strtoll(value_text.c_str(), &end, 10);
      if (end == value_text.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s: expected integer, got '%s'\n",
                     flag.name.c_str(), value_text.c_str());
        return false;
      }
      *static_cast<int64_t*>(flag.target) = v;
      return true;
    }
    case Type::kDouble: {
      const double v = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s: expected number, got '%s'\n",
                     flag.name.c_str(), value_text.c_str());
        return false;
      }
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value_text;
      return true;
  }
  return false;
}

bool FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = Find(arg);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag --%s\n", arg.c_str());
      return false;
    }
    if (!has_value && flag->type != Type::kBool) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s: missing value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!Assign(*flag, value)) return false;
  }
  return true;
}

void FlagParser::PrintUsage(const std::string& binary_name) const {
  std::printf("usage: %s [flags]\n", binary_name.c_str());
  for (const Flag& f : flags_) {
    std::printf("  --%-22s %s (default: %s)\n", f.name.c_str(), f.help.c_str(),
                f.default_repr.c_str());
  }
}

}  // namespace mst
