// Wall-clock timing utilities for the benchmark harness.

#ifndef MST_UTIL_TIMER_H_
#define MST_UTIL_TIMER_H_

#include <chrono>

namespace mst {

/// Simple monotonic stopwatch. Starts on construction; `ElapsedMs()` may be
/// read any number of times; `Restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the stopwatch origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mst

#endif  // MST_UTIL_TIMER_H_
