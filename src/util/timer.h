// Wall-clock and CPU-time stopwatches for the benchmark harness.

#ifndef MST_UTIL_TIMER_H_
#define MST_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace mst {

/// Simple monotonic stopwatch. Starts on construction; `ElapsedMs()` may be
/// read any number of times; `Restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the stopwatch origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process-CPU-time stopwatch, for benchmarks that must stay meaningful on
/// shared or oversubscribed machines where wall-clock noise drowns the
/// signal. Same interface as WallTimer. Only measures this process's CPU
/// time — use WallTimer for anything involving multiple processes or real
/// concurrency throughput.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedMs() const { return (Now() - start_) * 1e3; }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
  }

  double start_;
};

}  // namespace mst

#endif  // MST_UTIL_TIMER_H_
