// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are reported and cause Parse() to return false so binaries can print
// usage and exit non-zero.

#ifndef MST_UTIL_FLAGS_H_
#define MST_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mst {

/// Registry of typed flags for one binary. Register flags, then call Parse().
class FlagParser {
 public:
  /// Registers flags; `help` is shown by PrintUsage(). Pointers must outlive
  /// the parser. The pointee holds the default until Parse() overwrites it.
  void AddBool(const std::string& name, bool* value, const std::string& help);
  void AddInt(const std::string& name, int64_t* value, const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);

  /// Parses argv. Returns false on an unknown flag or a malformed value
  /// (after printing a diagnostic to stderr). Non-flag positional arguments
  /// are collected into positional().
  bool Parse(int argc, char** argv);

  /// Prints registered flags, defaults, and help strings to stdout.
  void PrintUsage(const std::string& binary_name) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kBool, kInt, kDouble, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  bool Assign(const Flag& flag, const std::string& value_text);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mst

#endif  // MST_UTIL_FLAGS_H_
