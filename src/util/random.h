// Deterministic pseudo-random number generation for generators and tests.
//
// All experiment code derives randomness from `mst::Rng` seeded explicitly, so
// every dataset, query set and benchmark row in this repository is exactly
// reproducible run-to-run and machine-to-machine (we avoid distribution
// classes from <random> whose sequences are implementation-defined only for
// some distributions; the ones used here — uniform via splitmix-style bits,
// normal via Box–Muller — are implemented locally).

#ifndef MST_UTIL_RANDOM_H_
#define MST_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "src/util/check.h"

namespace mst {

/// Deterministic 64-bit PRNG (xoshiro256** seeded by splitmix64) with the
/// sampling helpers the trajectory generators need.
class Rng {
 public:
  /// Creates a generator whose entire stream is a pure function of `seed`.
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64 random bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi) {
    MST_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformIndex(uint64_t n) {
    MST_DCHECK(n > 0);
    // Multiply-shift rejection-free mapping; bias is < 2^-64 * n, negligible
    // for the index ranges used here (n << 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MST_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformIndex(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal deviate (Box–Muller; one value per call, spare cached).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Avoid log(0).
    if (u1 <= 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Lognormal deviate: exp(Normal(mu, sigma)). `mu`/`sigma` are the
  /// parameters of the underlying normal, as in the GSTD generator.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Forks an independent generator for stream `i`; children of distinct `i`
  /// (or of distinct parents) produce uncorrelated sequences.
  Rng Fork(uint64_t i) {
    return Rng(NextU64() ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mst

#endif  // MST_UTIL_RANDOM_H_
