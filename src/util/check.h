// Lightweight invariant-checking macros.
//
// The library does not use C++ exceptions (Google style). Programmer errors
// and broken invariants abort the process with a diagnostic; expected failures
// are reported through return values (std::optional / status booleans).

#ifndef MST_UTIL_CHECK_H_
#define MST_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mst {
namespace internal_check {

/// Prints a fatal-check diagnostic and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "MST_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               (msg != nullptr && msg[0] != '\0') ? " — " : "",
               (msg != nullptr) ? msg : "");
  std::abort();
}

}  // namespace internal_check
}  // namespace mst

/// Aborts with a diagnostic if `cond` is false. Enabled in all build modes:
/// the checked invariants guard index/page bookkeeping where silent
/// corruption would be far more expensive than the branch.
#define MST_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mst::internal_check::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                       \
  } while (0)

/// MST_CHECK with an explanatory message (a string literal).
#define MST_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mst::internal_check::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                       \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define MST_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MST_DCHECK(cond) MST_CHECK(cond)
#endif

#endif  // MST_UTIL_CHECK_H_
