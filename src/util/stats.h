// Streaming summary statistics used when aggregating per-query measurements.

#ifndef MST_UTIL_STATS_H_
#define MST_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace mst {

/// Online accumulator of count / mean / variance / min / max (Welford).
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mst

#endif  // MST_UTIL_STATS_H_
