#include "src/util/table.h"

#include <cstdio>
#include <string>
#include <vector>

namespace mst {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::FmtInt(long long v) { return std::to_string(v); }

std::string TextTable::FmtPct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::Render() const {
  // Column widths over header and all rows.
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "  ";
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size(), ' ');
      }
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::Print() const {
  const std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string TextTable::RenderCsv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      const std::string& cell = row[i];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        out += '"';
        for (const char c : cell) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += cell;
      }
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool TextTable::WriteCsv(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string s = RenderCsv();
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace mst
