#include "src/shard/sharded_ingest.h"

#include <utility>

#include "src/shard/sharded_index.h"
#include "src/util/check.h"

namespace mst {

ShardedIngest::ShardedIngest(const Options& options) {
  MST_CHECK(options.num_shards >= 1);
  owned_storage_.reserve(static_cast<size_t>(options.num_shards));
  std::vector<WalStorageSet*> storage;
  for (int s = 0; s < options.num_shards; ++s) {
    owned_storage_.push_back(std::make_unique<MemWalStorageSet>());
    storage.push_back(owned_storage_.back().get());
  }
  engines_.reserve(storage.size());
  for (WalStorageSet* set : storage) {
    engines_.push_back(std::make_unique<IngestEngine>(set, options.engine));
  }
}

ShardedIngest::ShardedIngest(const std::vector<WalStorageSet*>& storage,
                             const Options& options,
                             std::vector<WalRecoveryInfo>* recovery) {
  MST_CHECK(!storage.empty());
  MST_CHECK(options.num_shards == static_cast<int>(storage.size()));
  if (recovery != nullptr) recovery->resize(storage.size());
  engines_.reserve(storage.size());
  for (size_t s = 0; s < storage.size(); ++s) {
    engines_.push_back(std::make_unique<IngestEngine>(
        storage[s], options.engine,
        recovery != nullptr ? &(*recovery)[s] : nullptr));
  }
}

bool ShardedIngest::Append(const std::vector<WalRecord>& batch) {
  const int n = num_shards();
  std::vector<std::vector<WalRecord>> slices(static_cast<size_t>(n));
  for (const WalRecord& r : batch) {
    slices[static_cast<size_t>(ShardedIndex::ShardOf(r.traj_id, n))]
        .push_back(r);
  }
  bool ok = true;
  for (int s = 0; s < n; ++s) {
    const std::vector<WalRecord>& slice = slices[static_cast<size_t>(s)];
    if (!slice.empty()) ok &= engines_[static_cast<size_t>(s)]->Append(slice);
  }
  return ok;
}

void ShardedIngest::MergeAll() {
  for (std::unique_ptr<IngestEngine>& engine : engines_) engine->Merge();
}

std::vector<IndexViewProvider> ShardedIngest::ViewProviders() const {
  std::vector<IndexViewProvider> providers;
  providers.reserve(engines_.size());
  for (const std::unique_ptr<IngestEngine>& engine : engines_) {
    providers.push_back(engine->ViewProvider());
  }
  return providers;
}

TrajectoryStore ShardedIngest::MaterializeStore() const {
  TrajectoryStore store;
  for (const std::unique_ptr<IngestEngine>& engine : engines_) {
    const TrajectoryStore shard = engine->MaterializeStore();
    for (const Trajectory& t : shard.trajectories()) store.Add(t);
  }
  return store;
}

}  // namespace mst
