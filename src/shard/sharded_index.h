// ShardedIndex: N independent single-threaded index shards behind one
// logical trajectory index — the scatter-gather substrate of the "millions
// of users" roadmap (modeled on TDengine's vnode split: one logical
// service, many self-contained storage shards).
//
// Trajectories are partitioned by a deterministic id hash; each shard owns
// a complete single-node stack — its own TrajectoryStore slice, its own
// TrajectoryIndex (PageFile + BufferManager + NodeCache), and its own
// cross-query ResultCache — so shards never share mutable state and a
// shard is the natural future unit of NUMA placement, ingestion, and
// replication. A k-MST query over the logical index is answered by
// searching every shard for its local top-k and merging (see
// scatter_gather.h); the partition is disjoint and exhaustive, so the
// merged top-k equals the unsharded answer exactly under exact refinement.
//
// With num_shards == 1 the single shard receives every trajectory in the
// original store order and builds the identical tree: results AND
// node-access counts match the unsharded index bitwise (the bench identity
// gate of bench_shard_scaling runs on exactly this property).

#ifndef MST_SHARD_SHARDED_INDEX_H_
#define MST_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/result_cache.h"
#include "src/geom/trajectory.h"
#include "src/index/trajectory_index.h"

namespace mst {

class ShardedIndex {
 public:
  /// Builds one shard's index instance. Receives the per-shard index
  /// options; returns a fresh, empty index (the sharded index calls
  /// BuildFrom on it with the shard's store slice).
  using IndexFactory = std::function<std::unique_ptr<TrajectoryIndex>(
      const TrajectoryIndex::Options&)>;

  struct Options {
    /// Number of shards (>= 1, checked).
    int num_shards = 4;
    /// Per-shard index construction knobs (buffer pages, node cache,
    /// leaf format). Every shard gets the same configuration.
    TrajectoryIndex::Options index_options;
    /// Per-shard cross-query result-cache capacity; 0 disables the caches.
    size_t result_cache_entries = 1 << 12;
  };

  /// One shard's complete single-threaded stack.
  struct Shard {
    TrajectoryStore store;
    std::unique_ptr<TrajectoryIndex> index;
    std::unique_ptr<ResultCache> result_cache;
  };

  /// `factory` defaults to the TB-tree (the paper's strongest index for
  /// k-MST and the only one with a per-trajectory access path).
  explicit ShardedIndex(const Options& options, IndexFactory factory = {});

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  /// Partitions `store` by trajectory-id hash and builds every shard's
  /// index from its slice (same round-robin insertion order BuildFrom uses
  /// on the unsharded index, restricted to the shard's trajectories).
  /// Call once; not thread-safe.
  void BuildFrom(const TrajectoryStore& store);

  /// Shrinks every shard's buffer to the paper's experiment setting
  /// (10 % of that shard's index, max 1000 pages) and drops cached state.
  void ConfigurePaperBuffer();

  int num_shards() const { return static_cast<int>(shards_.size()); }

  const Shard& shard(int i) const { return shards_[static_cast<size_t>(i)]; }
  Shard& shard(int i) { return shards_[static_cast<size_t>(i)]; }

  /// Deterministic shard assignment of a trajectory id (splitmix64 mix, so
  /// dense sequential ids spread evenly; stable across runs and platforms).
  /// With one shard everything maps to shard 0 in store order — the N=1
  /// identity anchor.
  static int ShardOf(TrajectoryId id, int num_shards);

  /// Aggregates over all shards (each is the sum/max of the per-shard
  /// value, exact by construction — shard counters are independent).
  int64_t NodeCount() const;
  int64_t SizeBytes() const;
  int64_t EntryCount() const;
  int64_t TotalTrajectories() const;
  double max_speed() const;

 private:
  Options options_;
  IndexFactory factory_;
  std::vector<Shard> shards_;
  bool built_ = false;
};

}  // namespace mst

#endif  // MST_SHARD_SHARDED_INDEX_H_
