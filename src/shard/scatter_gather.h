// ScatterGatherSearch: one logical k-MST query over a ShardedIndex. Fans
// the query out to a per-shard BFMSTSearch (each bound to that shard's
// index, store slice, and result cache), merges the per-shard top-k heaps
// into the global top-k, and aggregates per-shard stats exactly.
//
// Correctness: the shards partition the trajectory set disjointly and
// exhaustively, and each shard leg returns its local top-k by the exact
// same (dissim, id) order the unsharded search uses — so re-sorting the
// union of legs and truncating to k yields exactly the unsharded result
// set. Under exact refinement (exact_postprocess, the default) the
// dissimilarity values are the same closed-form integrals computed from
// the same trajectory samples, hence bitwise identical to the unsharded
// search for every shard count (bench_shard_scaling gates on this).
//
// Cross-shard bound sharing: shard legs of one query run in sequence on
// the calling thread (the shard stacks are single-threaded by design;
// cross-query parallelism lives in ShardFrontEnd). A leg that completes
// with full reach publishes its exact kth dissim to a KthBoundBoard, and
// every later leg seeds MstOptions::initial_kth_upper_bound from the
// board — a shard's kth-best over k globally-eligible trajectories is a
// true upper bound of the GLOBAL kth-best, so laggard shards prune
// candidates that cannot enter the merged top-k. Gated on
// exact_postprocess && policy == kExact at both ends (the PR 5 soundness
// gate: trapezoid piece sums are not lower bounds of exact values); the
// search inflates incoming seeds by its relative slack internally.

#ifndef MST_SHARD_SCATTER_GATHER_H_
#define MST_SHARD_SCATTER_GATHER_H_

#include <memory>
#include <vector>

#include "src/core/mst_search.h"
#include "src/shard/sharded_index.h"

namespace mst {

struct ScatterGatherOptions {
  /// Cross-shard kth-bound sharing (see header comment). Never changes
  /// results; only node accesses. Off = every leg searches unseeded.
  bool share_cross_shard_bounds = true;
};

class ScatterGatherSearch {
 public:
  /// `index` is not owned and must outlive the searcher (as must the
  /// shard stores and result caches it references).
  explicit ScatterGatherSearch(const ShardedIndex* index,
                               const ScatterGatherOptions& options = {});

  ScatterGatherSearch(const ScatterGatherSearch&) = delete;
  ScatterGatherSearch& operator=(const ScatterGatherSearch&) = delete;

  /// Runs the query on every shard and merges. Same preconditions as
  /// BFMstSearch::Search. `stats` (optional) receives the exact aggregate
  /// over shards (see AggregateShardStats); `per_shard_stats` (optional)
  /// receives each shard leg's own MstStats, indexed by shard.
  std::vector<MstResult> Search(
      const Trajectory& query, const TimeInterval& period,
      const MstOptions& options = MstOptions(), MstStats* stats = nullptr,
      std::vector<MstStats>* per_shard_stats = nullptr) const;

  /// Merges per-shard top-k lists into the global top-k: sorts the union
  /// by (dissim, id) — the unsharded search's result order — and truncates
  /// to k. Shard lists must come from disjoint trajectory partitions.
  static std::vector<MstResult> MergeShardResults(
      std::vector<std::vector<MstResult>> shard_results, int k);

  /// Exact aggregation of per-shard query stats: every counter is the sum
  /// over shards (each leg's counters are thread-local deltas of its own
  /// BFMstSearch::Search call, so per-(query, shard) isolation holds even
  /// when legs run on different worker threads); terminated_by_heuristic2
  /// is true iff any leg terminated early. With one shard this is the
  /// identity, anchoring the N=1 stats match against the unsharded search.
  static MstStats AggregateShardStats(const std::vector<MstStats>& per_shard);

  const ShardedIndex* sharded_index() const { return index_; }

 private:
  const ShardedIndex* index_;
  ScatterGatherOptions options_;
  // One searcher per shard, bound to the shard's stack at construction.
  std::vector<std::unique_ptr<BFMstSearch>> searchers_;
};

}  // namespace mst

#endif  // MST_SHARD_SCATTER_GATHER_H_
