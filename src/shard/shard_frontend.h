// ShardFrontEnd: the service layer of the sharded k-MST engine — one
// logical submission surface over N single-threaded shard stacks, modeled
// on TDengine's query-executor/vnode split: clients talk to one front
// door; storage-level work happens on per-shard workers that never share
// mutable state.
//
// A submitted query fans out to one QueryExecutor per shard (one worker
// and one bounded queue each, so each shard stack stays single-threaded
// and back-pressured independently); a gather worker awaits the per-shard
// legs, merges the per-shard top-k heaps (ScatterGatherSearch::
// MergeShardResults), and aggregates per-(query, shard) stats exactly
// (AggregateShardStats) before resolving the caller's future.
//
// Admission control: at most `max_in_flight_queries` queries may be
// between Submit and gather completion. The policy decides what happens at
// the limit — kBlock makes Submit wait (backpressure toward the client),
// kReject resolves the future immediately with `rejected == true` (load
// shedding). Below the front door, the per-shard bounded queues add a
// second, finer backpressure: a slow shard throttles fan-out onto it.
//
// Cross-shard bound sharing: the legs of one exact query share a
// KthBoundBoard (see kth_bound_board.h). A leg is seeded when its shard
// worker DEQUEUES it, so under load — shard queues deep, shards drifting
// apart — a laggard shard's leg starts with every bound the fast shards
// published meanwhile. Gated on exact_postprocess && policy == kExact at
// both ends; results are identical to sharing off, only node accesses
// drop. Per-query stats then depend on leg timing (a faster sibling shard
// means more pruning), so tests that lock stats bitwise turn sharing off.

#ifndef MST_SHARD_SHARD_FRONTEND_H_
#define MST_SHARD_SHARD_FRONTEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/exec/bounded_queue.h"
#include "src/exec/query_executor.h"
#include "src/shard/sharded_index.h"

namespace mst {

class ShardFrontEnd {
 public:
  enum class AdmissionPolicy {
    kBlock,   // Submit blocks until a slot frees (backpressure)
    kReject,  // Submit returns an immediately-ready rejected outcome
  };

  struct Options {
    /// Per-shard submission-queue bound; a full shard queue blocks fan-out.
    size_t per_shard_queue_capacity = 64;
    /// Queries admitted but not yet gathered; 0 = unlimited (no admission
    /// control, per-shard queues still bound the fan-out).
    int max_in_flight_queries = 256;
    AdmissionPolicy admission_policy = AdmissionPolicy::kBlock;
    /// Cross-shard kth-bound sharing for exact queries (see header).
    bool share_cross_shard_bounds = true;
    /// Per-shard-executor cross-query result-cache entries (each shard
    /// worker owns one; 0 disables them).
    size_t result_cache_entries = 1 << 12;
  };

  /// `index` is not owned and must outlive the front-end. Spawns one
  /// worker per shard plus one gather thread.
  ShardFrontEnd(const ShardedIndex* index, const Options& options);
  explicit ShardFrontEnd(const ShardedIndex* index)
      : ShardFrontEnd(index, Options()) {}

  /// Live-view form: one provider per shard (resolved by that shard's
  /// worker at dequeue time), the front door of a sharded ingest service —
  /// each shard's IngestEngine keeps publishing fresh snapshots while
  /// queries stream through. The providers must outlive the front-end.
  ShardFrontEnd(std::vector<IndexViewProvider> shard_views,
                const Options& options);

  ShardFrontEnd(const ShardFrontEnd&) = delete;
  ShardFrontEnd& operator=(const ShardFrontEnd&) = delete;

  /// Drains outstanding work before returning.
  ~ShardFrontEnd();

  /// Admits (or rejects) one query and fans it out to every shard. The
  /// future resolves with the merged top-k and exact aggregated stats once
  /// every shard leg completed. `request.kth_bound_board` is overwritten by
  /// the front-end (one fresh board per query). Thread-safe.
  std::future<QueryOutcome> Submit(QueryRequest request);

  /// Runs every request and returns outcomes in request order. Blocking
  /// admission applies per request, so a batch larger than the in-flight
  /// limit streams through the window rather than failing.
  std::vector<QueryOutcome> RunBatch(const std::vector<QueryRequest>& requests);

  /// Stops accepting queries, drains everything admitted, joins all
  /// threads. Idempotent; late Submits resolve as cancelled.
  void Shutdown();

  int num_shards() const { return static_cast<int>(executors_.size()); }

  /// Queries fully gathered so far.
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Queries turned away by kReject admission control.
  int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Queries currently between admission and gather completion.
  int in_flight() const;

  /// The executor serving shard `s` (tests/diagnostics).
  QueryExecutor& shard_executor(int s) { return *executors_[s]; }

 private:
  struct GatherTask {
    std::vector<std::future<QueryOutcome>> legs;  // one per shard, in order
    std::promise<QueryOutcome> promise;
    int k = 1;
  };

  void GatherLoop();
  void FinishQuery();  // in-flight decrement + admission wakeup

  const ShardedIndex* index_;
  Options options_;
  std::vector<std::unique_ptr<QueryExecutor>> executors_;
  BoundedQueue<GatherTask> gather_queue_;
  std::thread gather_thread_;

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int in_flight_ = 0;           // guarded by admission_mu_
  bool shutdown_ = false;       // guarded by admission_mu_
  std::mutex shutdown_mu_;      // serializes Shutdown callers for the joins

  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> rejected_{0};
};

}  // namespace mst

#endif  // MST_SHARD_SHARD_FRONTEND_H_
