#include "src/shard/sharded_index.h"

#include <algorithm>
#include <utility>

#include "src/index/tbtree.h"
#include "src/util/check.h"

namespace mst {

namespace {

// splitmix64 finalizer: full-avalanche mix so sequential ids (the common
// case — generators hand out 0..N-1) spread uniformly over the shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardedIndex::ShardedIndex(const Options& options, IndexFactory factory)
    : options_(options), factory_(std::move(factory)) {
  MST_CHECK_MSG(options.num_shards >= 1, "num_shards must be at least 1");
  if (!factory_) {
    factory_ = [](const TrajectoryIndex::Options& opt) {
      return std::make_unique<TBTree>(opt);
    };
  }
  shards_.resize(static_cast<size_t>(options.num_shards));
  for (Shard& shard : shards_) {
    shard.index = factory_(options_.index_options);
    MST_CHECK(shard.index != nullptr);
    shard.result_cache =
        std::make_unique<ResultCache>(options_.result_cache_entries);
  }
}

int ShardedIndex::ShardOf(TrajectoryId id, int num_shards) {
  MST_CHECK(num_shards >= 1);
  if (num_shards == 1) return 0;
  return static_cast<int>(Mix64(static_cast<uint64_t>(id)) %
                          static_cast<uint64_t>(num_shards));
}

void ShardedIndex::BuildFrom(const TrajectoryStore& store) {
  MST_CHECK_MSG(!built_, "BuildFrom may be called once");
  built_ = true;
  // Slice in store order so each shard's insertion sequence is the original
  // round-robin order restricted to its trajectories — with one shard this
  // reproduces the unsharded build exactly.
  for (const Trajectory& trajectory : store.trajectories()) {
    const int s = ShardOf(trajectory.id(), num_shards());
    shards_[static_cast<size_t>(s)].store.Add(trajectory);
  }
  for (Shard& shard : shards_) {
    if (!shard.store.empty()) shard.index->BuildFrom(shard.store);
  }
}

void ShardedIndex::ConfigurePaperBuffer() {
  for (Shard& shard : shards_) shard.index->ConfigurePaperBuffer();
}

int64_t ShardedIndex::NodeCount() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) total += shard.index->NodeCount();
  return total;
}

int64_t ShardedIndex::SizeBytes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) total += shard.index->SizeBytes();
  return total;
}

int64_t ShardedIndex::EntryCount() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) total += shard.index->EntryCount();
  return total;
}

int64_t ShardedIndex::TotalTrajectories() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<int64_t>(shard.store.size());
  }
  return total;
}

double ShardedIndex::max_speed() const {
  double speed = 0.0;
  for (const Shard& shard : shards_) {
    speed = std::max(speed, shard.index->max_speed());
  }
  return speed;
}

}  // namespace mst
