// ShardedIngest: the write path of the sharded service — one IngestEngine
// (own WAL, delta tree, packed main tree) per shard, with records routed by
// the same splitmix64 id hash ShardedIndex partitions by, so a sharded
// ingest's shard s always holds exactly the trajectories a ShardedIndex
// build would have given it. ViewProviders() plugs straight into
// ShardFrontEnd's live constructor, completing the loop: fleets append
// through ShardedIngest while k-MST queries scatter-gather over the same
// engines' snapshots.
//
// Durability is per shard: each shard's slice of an Append batch commits
// atomically in that shard's WAL, but a crash can surface some shards'
// slices without others' (cross-shard atomic commit needs a transaction
// coordinator this repo doesn't have; recovery is still consistent — every
// shard recovers a committed prefix of its own timeline).

#ifndef MST_SHARD_SHARDED_INGEST_H_
#define MST_SHARD_SHARDED_INGEST_H_

#include <memory>
#include <vector>

#include "src/exec/query_executor.h"
#include "src/ingest/ingest_engine.h"
#include "src/ingest/wal_storage.h"

namespace mst {

class ShardedIngest {
 public:
  struct Options {
    /// Number of shards (>= 1, checked).
    int num_shards = 4;
    /// Configuration every shard's engine gets.
    IngestEngine::Options engine;
  };

  /// Fresh service: owns one empty in-memory WAL storage set per shard.
  explicit ShardedIngest(const Options& options);

  /// Recovery form: external per-shard storage sets (borrowed; must
  /// outlive the service), one per shard — size fixes the shard count, and
  /// options.num_shards must match it. `recovery`, when non-null, receives
  /// one WalRecoveryInfo per shard.
  ShardedIngest(const std::vector<WalStorageSet*>& storage,
                const Options& options,
                std::vector<WalRecoveryInfo>* recovery = nullptr);

  ShardedIngest(const ShardedIngest&) = delete;
  ShardedIngest& operator=(const ShardedIngest&) = delete;

  /// Routes each record to its shard and appends the per-shard slices.
  /// True iff every touched shard accepted its slice (per-shard atomic;
  /// see the header comment for the cross-shard caveat).
  bool Append(const std::vector<WalRecord>& batch);

  /// Merges every shard's delta into its main tree.
  void MergeAll();

  /// One live view provider per shard, in shard order — ShardFrontEnd's
  /// live-constructor input.
  std::vector<IndexViewProvider> ViewProviders() const;

  /// Union of every shard's trajectory table (shard-major, each shard in
  /// first-append order) — the quiesced-oracle input.
  TrajectoryStore MaterializeStore() const;

  int num_shards() const { return static_cast<int>(engines_.size()); }

  IngestEngine& engine(int s) { return *engines_[static_cast<size_t>(s)]; }
  const IngestEngine& engine(int s) const {
    return *engines_[static_cast<size_t>(s)];
  }

 private:
  std::vector<std::unique_ptr<MemWalStorageSet>> owned_storage_;
  std::vector<std::unique_ptr<IngestEngine>> engines_;
};

}  // namespace mst

#endif  // MST_SHARD_SHARDED_INGEST_H_
