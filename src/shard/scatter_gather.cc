#include "src/shard/scatter_gather.h"

#include <algorithm>
#include <utility>

#include "src/exec/kth_bound_board.h"
#include "src/util/check.h"

namespace mst {

ScatterGatherSearch::ScatterGatherSearch(const ShardedIndex* index,
                                         const ScatterGatherOptions& options)
    : index_(index), options_(options) {
  MST_CHECK(index != nullptr);
  searchers_.reserve(static_cast<size_t>(index->num_shards()));
  for (int s = 0; s < index->num_shards(); ++s) {
    const ShardedIndex::Shard& shard = index->shard(s);
    searchers_.push_back(std::make_unique<BFMstSearch>(
        shard.index.get(), &shard.store, shard.result_cache.get()));
  }
}

std::vector<MstResult> ScatterGatherSearch::Search(
    const Trajectory& query, const TimeInterval& period,
    const MstOptions& options, MstStats* stats,
    std::vector<MstStats>* per_shard_stats) const {
  const bool exact_query = options.exact_postprocess &&
                           options.policy == IntegrationPolicy::kExact;
  const bool share = options_.share_cross_shard_bounds && exact_query &&
                     index_->num_shards() > 1;
  KthBoundBoard board;

  std::vector<std::vector<MstResult>> shard_results;
  shard_results.reserve(searchers_.size());
  std::vector<MstStats> shard_stats(searchers_.size());
  for (size_t s = 0; s < searchers_.size(); ++s) {
    const ShardedIndex::Shard& shard = index_->shard(static_cast<int>(s));
    if (shard.store.empty()) {
      // Empty shard: nothing indexed, nothing to search (an empty index
      // would answer the same, with one fewer special case than relying on
      // BFMstSearch's empty-root path for a never-built tree).
      shard_results.emplace_back();
      continue;
    }
    MstOptions leg_options = options;
    if (share) {
      leg_options.initial_kth_upper_bound =
          std::min(leg_options.initial_kth_upper_bound, board.Current());
    }
    std::vector<MstResult> results = searchers_[s]->Search(
        query, period, leg_options, &shard_stats[s]);
    if (share && results.size() == static_cast<size_t>(options.k)) {
      // Full reach only: a shard's exact kth-best over k eligible
      // trajectories upper-bounds the global kth-best. Fewer than k
      // results bound nothing (see KthBoundBoard).
      board.PublishCounted(results.back().dissim);
    }
    shard_results.push_back(std::move(results));
  }

  if (stats != nullptr) *stats = AggregateShardStats(shard_stats);
  if (per_shard_stats != nullptr) *per_shard_stats = std::move(shard_stats);
  return MergeShardResults(std::move(shard_results), options.k);
}

std::vector<MstResult> ScatterGatherSearch::MergeShardResults(
    std::vector<std::vector<MstResult>> shard_results, int k) {
  MST_CHECK(k >= 1);
  std::vector<MstResult> merged;
  for (std::vector<MstResult>& results : shard_results) {
    merged.insert(merged.end(), results.begin(), results.end());
  }
  // The unsharded search's result order: ascending dissim, id tiebreak.
  std::sort(merged.begin(), merged.end(),
            [](const MstResult& a, const MstResult& b) {
              if (a.dissim != b.dissim) return a.dissim < b.dissim;
              return a.id < b.id;
            });
  if (merged.size() > static_cast<size_t>(k)) {
    merged.resize(static_cast<size_t>(k));
  }
  return merged;
}

MstStats ScatterGatherSearch::AggregateShardStats(
    const std::vector<MstStats>& per_shard) {
  MstStats total;
  for (const MstStats& s : per_shard) {
    total.nodes_accessed += s.nodes_accessed;
    total.total_nodes += s.total_nodes;
    total.leaf_entries_seen += s.leaf_entries_seen;
    total.heap_pushes += s.heap_pushes;
    total.candidates_created += s.candidates_created;
    total.candidates_completed += s.candidates_completed;
    total.candidates_rejected += s.candidates_rejected;
    total.leaf_entries_pruned += s.leaf_entries_pruned;
    total.candidates_ineligible += s.candidates_ineligible;
    total.eager_completions += s.eager_completions;
    total.exact_recomputations += s.exact_recomputations;
    total.node_cache_hits += s.node_cache_hits;
    total.node_cache_misses += s.node_cache_misses;
    total.result_cache_hits += s.result_cache_hits;
    total.result_cache_misses += s.result_cache_misses;
    total.terminated_by_heuristic2 |= s.terminated_by_heuristic2;
  }
  return total;
}

}  // namespace mst
