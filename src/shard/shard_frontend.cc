#include "src/shard/shard_frontend.h"

#include <utility>

#include "src/shard/scatter_gather.h"
#include "src/util/check.h"

namespace mst {

namespace {

QueryOutcome ReadyOutcome(bool cancelled, bool rejected) {
  QueryOutcome out;
  out.cancelled = cancelled;
  out.rejected = rejected;
  return out;
}

std::future<QueryOutcome> ReadyFuture(bool cancelled, bool rejected) {
  std::promise<QueryOutcome> promise;
  std::future<QueryOutcome> future = promise.get_future();
  promise.set_value(ReadyOutcome(cancelled, rejected));
  return future;
}

}  // namespace

namespace {

// The per-shard static views of a built ShardedIndex, for delegation to the
// provider-based constructor.
std::vector<IndexViewProvider> StaticShardViews(const ShardedIndex* index) {
  MST_CHECK(index != nullptr);
  MST_CHECK(index->num_shards() >= 1);
  std::vector<IndexViewProvider> views;
  views.reserve(static_cast<size_t>(index->num_shards()));
  for (int s = 0; s < index->num_shards(); ++s) {
    const ShardedIndex::Shard& shard = index->shard(s);
    views.push_back(
        [view = MakeStaticIndexView(shard.index.get(), &shard.store)] {
          return view;
        });
  }
  return views;
}

}  // namespace

ShardFrontEnd::ShardFrontEnd(const ShardedIndex* index, const Options& options)
    : ShardFrontEnd(StaticShardViews(index), options) {
  index_ = index;
}

ShardFrontEnd::ShardFrontEnd(std::vector<IndexViewProvider> shard_views,
                             const Options& options)
    : index_(nullptr),
      options_(options),
      // The gather queue needs no extra backpressure of its own: admission
      // control plus the per-shard queues already bound the number of
      // outstanding queries, so size it to never block the fan-out path.
      gather_queue_(options.max_in_flight_queries > 0
                        ? static_cast<size_t>(options.max_in_flight_queries)
                        : 1024) {
  MST_CHECK(!shard_views.empty());
  executors_.reserve(shard_views.size());
  for (IndexViewProvider& provider : shard_views) {
    QueryExecutor::Options exec_opt;
    exec_opt.num_workers = 1;  // single-threaded shard stack
    exec_opt.queue_capacity = options.per_shard_queue_capacity;
    exec_opt.result_cache_entries = options.result_cache_entries;
    // Batch-level bound sharing is the executor's RunBatch feature; the
    // front-end only uses Submit, and cross-shard sharing replaces it here.
    exec_opt.share_batch_bounds = false;
    executors_.push_back(
        std::make_unique<QueryExecutor>(std::move(provider), exec_opt));
  }
  gather_thread_ = std::thread([this] { GatherLoop(); });
}

ShardFrontEnd::~ShardFrontEnd() { Shutdown(); }

std::future<QueryOutcome> ShardFrontEnd::Submit(QueryRequest request) {
  // Admission: take a slot inside the window, or block/reject at the edge.
  {
    std::unique_lock<std::mutex> lock(admission_mu_);
    if (shutdown_) return ReadyFuture(/*cancelled=*/true, /*rejected=*/false);
    if (options_.max_in_flight_queries > 0) {
      if (in_flight_ >= options_.max_in_flight_queries) {
        if (options_.admission_policy == AdmissionPolicy::kReject) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          return ReadyFuture(/*cancelled=*/false, /*rejected=*/true);
        }
        admission_cv_.wait(lock, [this] {
          return shutdown_ || in_flight_ < options_.max_in_flight_queries;
        });
        if (shutdown_) {
          return ReadyFuture(/*cancelled=*/true, /*rejected=*/false);
        }
      }
    }
    ++in_flight_;
  }

  // One fresh bound board per query, shared by its shard legs; the
  // executor applies the exact-policy gate at both seed and publish (see
  // QueryRequest::kth_bound_board), so handing a board to a non-exact
  // query is inert rather than unsound.
  std::shared_ptr<KthBoundBoard> board;
  if (options_.share_cross_shard_bounds && num_shards() > 1) {
    board = std::make_shared<KthBoundBoard>();
  }

  GatherTask gather;
  gather.k = request.options.k;
  gather.legs.reserve(executors_.size());
  std::future<QueryOutcome> future = gather.promise.get_future();
  for (std::unique_ptr<QueryExecutor>& executor : executors_) {
    QueryRequest leg = request;
    leg.kth_bound_board = board;
    gather.legs.push_back(executor->Submit(std::move(leg)));
  }
  if (!gather_queue_.Push(std::move(gather))) {
    // Raced with Shutdown after fan-out: the legs will still drain inside
    // the shard executors, but nobody gathers them — resolve the caller as
    // cancelled and release the admission slot here.
    FinishQuery();
    return ReadyFuture(/*cancelled=*/true, /*rejected=*/false);
  }
  return future;
}

std::vector<QueryOutcome> ShardFrontEnd::RunBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<std::future<QueryOutcome>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (std::future<QueryOutcome>& future : futures) {
    outcomes.push_back(future.get());
  }
  return outcomes;
}

void ShardFrontEnd::GatherLoop() {
  while (std::optional<GatherTask> task = gather_queue_.Pop()) {
    std::vector<std::vector<MstResult>> shard_results;
    std::vector<MstStats> leg_stats;
    shard_results.reserve(task->legs.size());
    leg_stats.reserve(task->legs.size());
    bool cancelled = false;
    for (std::future<QueryOutcome>& leg : task->legs) {
      QueryOutcome out = leg.get();
      cancelled |= out.cancelled;
      shard_results.push_back(std::move(out.results));
      leg_stats.push_back(out.stats);
    }
    QueryOutcome out;
    if (cancelled) {
      // A shard executor dropped a leg (only possible during shutdown):
      // a partial merge would silently miss that shard's candidates.
      out.cancelled = true;
    } else {
      out.results = ScatterGatherSearch::MergeShardResults(
          std::move(shard_results), task->k);
      out.stats = ScatterGatherSearch::AggregateShardStats(leg_stats);
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
    // Release the admission slot before resolving the future: a caller
    // whose future is ready must observe this query gone from in_flight().
    FinishQuery();
    task->promise.set_value(std::move(out));
  }
}

void ShardFrontEnd::FinishQuery() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

int ShardFrontEnd::in_flight() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return in_flight_;
}

void ShardFrontEnd::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    shutdown_ = true;
  }
  admission_cv_.notify_all();
  // Order matters: the gather thread needs the shard executors alive while
  // it drains admitted queries, so close+join the gather side first, then
  // drain the executors (whose queues are empty by then — every admitted
  // leg was awaited by a gather task).
  gather_queue_.Close();
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (gather_thread_.joinable()) gather_thread_.join();
  for (std::unique_ptr<QueryExecutor>& executor : executors_) {
    executor->Shutdown(QueryExecutor::DrainMode::kDrain);
  }
}

}  // namespace mst
